package uflip_test

// This file regenerates every table and figure of the uFLIP paper's
// evaluation (Section 5) as Go benchmarks. The benchmarks run the full
// methodology against simulated devices (scaled to 1 GB for speed; behaviour
// is capacity-independent) and report the headline numbers as custom
// metrics, named after what the paper reports:
//
//	BenchmarkTable3/<device>   — SR/RR/SW/RW ms, locality area, partitions...
//	BenchmarkFigure3           — Mtron RW start-up length and cost levels
//	BenchmarkFigure4           — Kingston DTI SW period
//	BenchmarkFigure5           — Mtron lingering reclamation (pause bound)
//	BenchmarkFigure6/7         — granularity curves (Memoright / DTI)
//	BenchmarkFigure8           — locality curves (Samsung/Memoright/Mtron)
//	BenchmarkAlignment/Mix/Parallelism — the Section 5.2 "other results"
//	BenchmarkDeviceState       — the Section 4.1 Samsung state anomaly
//	BenchmarkAblation*         — design-choice ablations from DESIGN.md
//
// Absolute numbers come from the calibrated simulator; the claim is shape
// fidelity against the paper (see EXPERIMENTS.md).

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"uflip/internal/core"
	"uflip/internal/device"
	"uflip/internal/engine"
	"uflip/internal/flash"
	"uflip/internal/ftl"
	"uflip/internal/methodology"
	"uflip/internal/paperexp"
	"uflip/internal/profile"
	"uflip/internal/statestore"
	"uflip/internal/trace"
	"uflip/internal/workload"
)

// benchState is the state store every benchmark in this file shares: each
// (device, capacity, seed) master is enforced once per `go test -bench`
// invocation instead of once per benchmark, without changing any result —
// cached states are byte-identical to freshly enforced ones.
var benchState struct {
	once sync.Once
	dir  string
	st   *statestore.Store
}

func benchCfg() paperexp.Config {
	cfg := paperexp.DefaultConfig()
	cfg.Capacity = 512 << 20
	benchState.once.Do(func() {
		dir, err := os.MkdirTemp("", "uflip-bench-state-")
		if err != nil {
			return // fall back to live enforcement
		}
		st, err := statestore.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return
		}
		benchState.dir, benchState.st = dir, st
	})
	cfg.Store = benchState.st
	return cfg
}

func TestMain(m *testing.M) {
	code := m.Run()
	if benchState.dir != "" {
		os.RemoveAll(benchState.dir)
	}
	os.Exit(code)
}

func prepare(b *testing.B, key string, cfg paperexp.Config) (device.Device, time.Duration) {
	b.Helper()
	dev, at, err := paperexp.Prepare(key, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return dev, at
}

// BenchmarkTable3 regenerates the paper's result-summary table, one
// sub-benchmark per representative device. The benchmark plan executes
// through the parallel engine at GOMAXPROCS workers; results are identical
// for any worker count.
func BenchmarkTable3(b *testing.B) {
	for _, p := range profile.Representatives() {
		p := p
		b.Run(p.Key, func(b *testing.B) {
			cfg := benchCfg()
			for i := 0; i < b.N; i++ {
				c, _, err := paperexp.Table3RowParallel(context.Background(), p.Key, cfg, runtime.GOMAXPROCS(0))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(c.SRms, "SR-ms")
				b.ReportMetric(c.RRms, "RR-ms")
				b.ReportMetric(c.SWms, "SW-ms")
				b.ReportMetric(c.RWms, "RW-ms")
				b.ReportMetric(float64(c.LocalityMB), "locality-MB")
				b.ReportMetric(float64(c.Partitions), "partitions")
				b.ReportMetric(c.ReverseFactor, "reverse-x")
				b.ReportMetric(c.InPlaceFactor, "inplace-x")
				b.ReportMetric(c.LargeIncrFactor, "largeincr-x")
				b.ReportMetric(c.PauseEffectMS, "pause-ms")
			}
		})
	}
}

// BenchmarkFigure3 regenerates the Mtron random-write trace: a cheap
// start-up phase (paper: ~125 IOs at ~0.4 ms) followed by oscillation.
func BenchmarkFigure3(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		dev, at := prepare(b, "mtron", cfg)
		tr, err := paperexp.Figure3(dev, at, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tr.Analysis.StartUp), "startup-ios")
		b.ReportMetric(tr.Analysis.CheapLevel*1e3, "cheap-ms")
		b.ReportMetric(tr.Analysis.ExpensiveLevel*1e3, "expensive-ms")
		b.ReportMetric(tr.Run.Summary.Mean*1e3, "mean-ms")
	}
}

// BenchmarkFigure4 regenerates the Kingston DTI sequential-write trace:
// no start-up, oscillation with a period around the flash block (paper:
// ~128 IOs).
func BenchmarkFigure4(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		dev, at := prepare(b, "kingston-dti", cfg)
		tr, err := paperexp.Figure4(dev, at, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tr.Analysis.StartUp), "startup-ios")
		b.ReportMetric(float64(tr.Analysis.Period), "period-ios")
		b.ReportMetric(tr.Run.Summary.Mean*1e3, "mean-ms")
	}
}

// BenchmarkFigure5 regenerates the pause-determination experiment on the
// Mtron: sequential reads stay slow for a while after a random-write batch
// (paper: ~3,000 reads, ~2.5 s).
func BenchmarkFigure5(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		dev, at := prepare(b, "mtron", cfg)
		rep, err := paperexp.Figure5(dev, at, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.LingerIOs), "linger-ios")
		b.ReportMetric(rep.LingerTime.Seconds(), "linger-s")
		b.ReportMetric(rep.RecommendedPause.Seconds(), "pause-s")
	}
}

func granularityBench(b *testing.B, key string) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		dev, at := prepare(b, key, cfg)
		curves, _, err := paperexp.GranularityCurves(dev, at, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, base := range core.Baselines {
			for _, pt := range curves[base] {
				if pt.X == 32 { // the paper's reference size
					b.ReportMetric(pt.Y, base.String()+"32K-ms")
				}
				if pt.X == 512 {
					b.ReportMetric(pt.Y, base.String()+"512K-ms")
				}
			}
		}
	}
}

// BenchmarkFigure6 regenerates the granularity curves for the Memoright SSD
// (all reads and sequential writes linear and cheap; random writes >= 5 ms
// past the caching threshold).
func BenchmarkFigure6(b *testing.B) { granularityBench(b, "memoright") }

// BenchmarkFigure7 regenerates the granularity curves for the Kingston DTI
// (small sequential writes disproportionately expensive; random writes flat
// around 260 ms).
func BenchmarkFigure7(b *testing.B) { granularityBench(b, "kingston-dti") }

// BenchmarkFigure8 regenerates the locality curves: RW cost relative to SW
// as the random-write target grows, for Samsung, Memoright and Mtron.
func BenchmarkFigure8(b *testing.B) {
	for _, key := range []string{"samsung", "memoright", "mtron"} {
		key := key
		b.Run(key, func(b *testing.B) {
			cfg := benchCfg()
			for i := 0; i < b.N; i++ {
				dev, at := prepare(b, key, cfg)
				pts, _, err := paperexp.LocalityCurve(dev, at, cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, pt := range pts {
					switch pt.X {
					case 1:
						b.ReportMetric(pt.Y, "rel-1MB")
					case 8:
						b.ReportMetric(pt.Y, "rel-8MB")
					case 128:
						b.ReportMetric(pt.Y, "rel-128MB")
					}
				}
			}
		})
	}
}

// BenchmarkAlignment regenerates the Section 5.2 alignment result: on the
// Samsung SSD, unaligned random IOs cost roughly twice as much.
func BenchmarkAlignment(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		dev, at := prepare(b, "samsung", cfg)
		d := core.StandardDefaults()
		d.IOCount = cfg.IOCount
		d.RandomTarget = dev.Capacity() / 2
		series, _, err := paperexp.SweepSeries(dev, at, cfg, core.Alignment(d, dev.Capacity()))
		if err != nil {
			b.Fatal(err)
		}
		rw := series["RW"]
		if len(rw) > 0 {
			b.ReportMetric(rw[0].Y, "aligned512B-shift-ms")
			b.ReportMetric(rw[len(rw)/2].Y, "midshift-ms")
		}
	}
}

// BenchmarkMix regenerates the Section 5.2 mix result: combining baseline
// patterns does not change overall cost much (unlike disks).
func BenchmarkMix(b *testing.B) {
	cfg := benchCfg()
	cfg.IOCount = 512
	for i := 0; i < b.N; i++ {
		dev, at := prepare(b, "memoright", cfg)
		d := core.StandardDefaults()
		d.IOCount = cfg.IOCount
		d.RandomTarget = dev.Capacity() / 4
		series, _, err := paperexp.SweepSeries(dev, at, cfg, core.Mix(d, dev.Capacity()))
		if err != nil {
			b.Fatal(err)
		}
		if pts := series["SR/RR"]; len(pts) > 0 {
			b.ReportMetric(pts[0].Y, "SR-RR-1:1-ms")
		}
		if pts := series["RR/RW"]; len(pts) > 0 {
			b.ReportMetric(pts[len(pts)-1].Y, "RR-RW-64:1-ms")
		}
	}
}

// BenchmarkParallelism regenerates the Section 5.2 parallelism result:
// no benefit from concurrent submission; parallel sequential writes
// degenerate toward partitioned/random cost.
func BenchmarkParallelism(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		dev, at := prepare(b, "memoright", cfg)
		d := core.StandardDefaults()
		d.IOCount = cfg.IOCount
		d.RandomTarget = dev.Capacity() / 2
		series, _, err := paperexp.SweepSeries(dev, at, cfg, core.Parallelism(d, dev.Capacity()))
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range series["SR"] {
			if pt.X == 1 {
				b.ReportMetric(pt.Y, "SR-par1-ms")
			}
			if pt.X == 16 {
				b.ReportMetric(pt.Y, "SR-par16-ms")
			}
		}
		for _, pt := range series["SW"] {
			if pt.X == 1 {
				b.ReportMetric(pt.Y, "SW-par1-ms")
			}
			if pt.X == 16 {
				b.ReportMetric(pt.Y, "SW-par16-ms")
			}
		}
	}
}

// BenchmarkDeviceState regenerates the Section 4.1 anomaly: the Samsung SSD
// writes randomly at ~1 ms out of the box, an order of magnitude faster
// than after the whole device has been written once.
func BenchmarkDeviceState(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fresh, used, err := paperexp.StateAnomaly("samsung", cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fresh, "outofbox-ms")
		b.ReportMetric(used, "randomstate-ms")
	}
}

// --- Ablations: isolate the design choices DESIGN.md calls out. ---

type ablationDevice struct {
	name string
	dev  device.Device
}

func buildAblation(b *testing.B, name string, logical int64, build func(arr *ftl.Array, cost ftl.CostModel) (ftl.Translator, error)) ablationDevice {
	b.Helper()
	cost := ftl.DefaultCostModel(flash.TypicalTiming(flash.SLC), 2112)
	cost.ReadParallel = 4
	cost.ProgramParallel = 8
	cost.MergeParallel = 2
	cost.EraseParallel = 2
	arr, err := ftl.NewUniformArray(4, flash.SLC, logical+96*128*1024)
	if err != nil {
		b.Fatal(err)
	}
	top, err := build(arr, cost)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := device.NewSimDevice(device.SimConfig{
		Name: name,
		Bus:  device.BusConfig{CmdLatency: 100 * time.Microsecond, ReadBytesPerS: 100 << 20, WriteBytesPerS: 100 << 20},
	}, top, cost)
	if err != nil {
		b.Fatal(err)
	}
	return ablationDevice{name: name, dev: sim}
}

func pageCfg(logical int64) ftl.PageConfig {
	return ftl.PageConfig{
		LogicalBytes:    logical,
		UnitBytes:       32 * 1024, // fine-grained mapping: no read-modify-write for 32 KB IOs
		WritePoints:     4,
		ReserveBlocks:   16,
		GCBatch:         4,
		MapDirtyLimit:   64,
		MapUnitsPerPage: 128,
	}
}

func measureRW(b *testing.B, ad ablationDevice) float64 {
	b.Helper()
	end, err := methodology.EnforceRandomState(ad.dev, 1)
	if err != nil {
		b.Fatal(err)
	}
	d := core.StandardDefaults()
	d.IOCount = 1024
	d.RandomTarget = ad.dev.Capacity() / 2
	run, err := core.ExecutePattern(ad.dev, core.RW.Pattern(d), end+5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	return run.Summary.Mean * 1e3
}

// BenchmarkAblationMapping contrasts page-granularity and block-granularity
// mapping: the reason SSD and USB-stick random writes differ by an order of
// magnitude.
func BenchmarkAblationMapping(b *testing.B) {
	const logical = 256 << 20
	for i := 0; i < b.N; i++ {
		page := buildAblation(b, "page-mapped", logical, func(arr *ftl.Array, cost ftl.CostModel) (ftl.Translator, error) {
			return ftl.NewPageFTL(arr, pageCfg(logical), cost)
		})
		block := buildAblation(b, "block-mapped", logical, func(arr *ftl.Array, cost ftl.CostModel) (ftl.Translator, error) {
			return ftl.NewBlockFTL(arr, ftl.BlockConfig{LogicalBytes: logical, LogBlocks: 4, MapDirtyLimit: 64, MapUnitsPerPage: 128}, cost)
		})
		b.ReportMetric(measureRW(b, page), "page-RW-ms")
		b.ReportMetric(measureRW(b, block), "block-RW-ms")
	}
}

// BenchmarkAblationWriteCache contrasts random-write cost with and without
// a write buffer when the working set fits: the locality mechanism. The FTL
// underneath maps at flash-block granularity, so uncached sub-unit random
// writes pay a read-modify-write.
func BenchmarkAblationWriteCache(b *testing.B) {
	const logical = 256 << 20
	coarse := pageCfg(logical)
	coarse.UnitBytes = 128 * 1024
	for i := 0; i < b.N; i++ {
		bare := buildAblation(b, "no-cache", logical, func(arr *ftl.Array, cost ftl.CostModel) (ftl.Translator, error) {
			return ftl.NewPageFTL(arr, coarse, cost)
		})
		cached := buildAblation(b, "cache-8MB", logical, func(arr *ftl.Array, cost ftl.CostModel) (ftl.Translator, error) {
			inner, err := ftl.NewPageFTL(arr, coarse, cost)
			if err != nil {
				return nil, err
			}
			return ftl.NewWriteCache(inner, ftl.CacheConfig{
				CapacityBytes: 8 << 20, LineBytes: 4096, RegionBytes: 128 * 1024, Streams: 8,
			}, cost)
		})
		d := core.StandardDefaults()
		d.IOCount = 1024
		d.RandomTarget = 4 << 20 // focused area within the cache
		for _, ad := range []ablationDevice{bare, cached} {
			end, err := methodology.EnforceRandomState(ad.dev, 1)
			if err != nil {
				b.Fatal(err)
			}
			run, err := core.ExecutePattern(ad.dev, core.RW.Pattern(d), end+5*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(run.Summary.Mean*1e3, ad.name+"-focusedRW-ms")
		}
	}
}

// BenchmarkAblationAsyncGC contrasts the Pause micro-benchmark with and
// without asynchronous reclamation: only the async device benefits from
// pauses between IOs.
func BenchmarkAblationAsyncGC(b *testing.B) {
	const logical = 256 << 20
	build := func(async bool, name string) ablationDevice {
		return buildAblation(b, name, logical, func(arr *ftl.Array, cost ftl.CostModel) (ftl.Translator, error) {
			cfg := pageCfg(logical)
			cfg.AsyncReclaim = async
			cfg.ReserveBlocks = 64
			return ftl.NewPageFTL(arr, cfg, cost)
		})
	}
	for i := 0; i < b.N; i++ {
		for _, ad := range []ablationDevice{build(false, "sync"), build(true, "async")} {
			end, err := methodology.EnforceRandomState(ad.dev, 1)
			if err != nil {
				b.Fatal(err)
			}
			d := core.StandardDefaults()
			d.IOCount = 1024
			d.RandomTarget = ad.dev.Capacity() / 2
			p := core.RW.Pattern(d)
			p.Pause = 10 * time.Millisecond
			run, err := core.ExecutePattern(ad.dev, p, end+5*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(run.Summary.Mean*1e3, ad.name+"-pausedRW-ms")
		}
	}
}

// BenchmarkAblationLogBlocks sweeps the replacement-block count of a
// block-mapped FTL and reports the partitioned sequential-write cost at 2
// and at 16 partitions: the partition-tolerance mechanism.
func BenchmarkAblationLogBlocks(b *testing.B) {
	const logical = 256 << 20
	for _, logs := range []int{2, 8} {
		logs := logs
		b.Run(deviceName("logs", logs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ad := buildAblation(b, deviceName("logs", logs), logical, func(arr *ftl.Array, cost ftl.CostModel) (ftl.Translator, error) {
					return ftl.NewBlockFTL(arr, ftl.BlockConfig{LogicalBytes: logical, LogBlocks: logs, MapDirtyLimit: 64, MapUnitsPerPage: 128}, cost)
				})
				end, err := methodology.EnforceRandomState(ad.dev, 1)
				if err != nil {
					b.Fatal(err)
				}
				d := core.StandardDefaults()
				d.IOCount = 1024
				at := end + 5*time.Second
				for _, parts := range []int{2, 8, 16} {
					p := core.SW.Pattern(d)
					p.LBA = core.Partitioned
					p.Partitions = parts
					p.TargetSize = 16 << 20
					run, err := core.ExecutePattern(ad.dev, p, at)
					if err != nil {
						b.Fatal(err)
					}
					at += run.Total + 5*time.Second
					b.ReportMetric(run.Summary.Mean*1e3, deviceName("parts", parts)+"-ms")
				}
			}
		})
	}
}

func deviceName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// --- Engine: parallel plan execution. ---

// BenchmarkSubmitBatch measures the batch-first submit path in isolation:
// 128-IO chained write batches against the Memoright profile, the device
// stack the executors drive in every plan run. ns/op is the cost of one full
// batch (bus, write cache, page FTL, flash array); the steady state runs at
// 0 allocs per batch (TestSubmitBatchZeroAlloc pins this).
func BenchmarkSubmitBatch(b *testing.B) {
	dev, err := profile.BuildDevice("memoright", 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 128
	ios := make([]device.IO, batch)
	done := make([]time.Duration, batch)
	for i := range ios {
		// Rewrites focused inside the write buffer: the executors' common
		// steady state, with cache admission and periodic destaging live.
		ios[i] = device.IO{Mode: device.Write, Off: int64(i) % 16 * 128 * 1024, Size: 32 * 1024}
	}
	var at time.Duration
	submit := func() {
		for j := range done {
			done[j] = device.ChainNext
		}
		if err := dev.SubmitBatch(at, ios, done); err != nil {
			b.Fatal(err)
		}
		at = done[batch-1]
	}
	for i := 0; i < 64; i++ {
		submit() // warm past free-pool drain and cache fill
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submit()
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "ios/s")
}

// BenchmarkSubmitBatchFaultyNoop is BenchmarkSubmitBatch with the device
// wrapped in a zero-fault FaultyDevice — the configuration every experiment
// runs in once fault injection exists, armed or not. The unarmed wrapper
// forwards SubmitBatch verbatim, so this must track BenchmarkSubmitBatch
// within noise; cmd/benchcheck pins the ratio below 5%.
func BenchmarkSubmitBatchFaultyNoop(b *testing.B) {
	raw, err := profile.BuildDevice("memoright", 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	dev := device.NewFaulty(device.FaultConfig{}, raw)
	const batch = 128
	ios := make([]device.IO, batch)
	done := make([]time.Duration, batch)
	for i := range ios {
		ios[i] = device.IO{Mode: device.Write, Off: int64(i) % 16 * 128 * 1024, Size: 32 * 1024}
	}
	var at time.Duration
	submit := func() {
		for j := range done {
			done[j] = device.ChainNext
		}
		if err := dev.SubmitBatch(at, ios, done); err != nil {
			b.Fatal(err)
		}
		at = done[batch-1]
	}
	for i := 0; i < 64; i++ {
		submit()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submit()
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "ios/s")
}

// BenchmarkReplayParallel replays a 100k-op OLTP stream through the engine
// at GOMAXPROCS workers — the workload-path companion to BenchmarkTable3 for
// the batch pipeline's wall-clock. The master device is enforced once before
// the timer starts; each iteration is pure segment replay over clones.
func BenchmarkReplayParallel(b *testing.B) {
	cfg := benchCfg()
	cfg.Capacity = 256 << 20
	gen := workload.OLTP{PageSize: 8192, TargetSize: cfg.Capacity / 2, ReadFraction: 0.7, Count: 100_000, Seed: cfg.Seed}
	ops, err := gen.Generate()
	if err != nil {
		b.Fatal(err)
	}
	factory := paperexp.ShardFactory("memoright", cfg)
	if _, _, err := factory(engine.Shard{}); err != nil { // warm the master
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := workload.ReplayParallel(context.Background(), gen.Name(), ops, factory, workload.Options{
			SegmentOps: 12500,
			Workers:    runtime.GOMAXPROCS(0),
			Seed:       cfg.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Total.Mean*1e3, "mean-ms")
		b.ReportMetric(res.P99.Seconds()*1e3, "p99-ms")
	}
}

// BenchmarkTraceScan measures binary .utr trace decoding: one iteration
// scans a 256k-record stream through trace.Scanner (header check, per-record
// validation, running CRC), the exact path server ingest and streaming
// replay take. The records/s metric is the headline — the format exists so
// million-op traces parse in a blink at O(1) memory — and benchcheck pins
// ns/op against the baseline so the scanner staying >1M records/s cannot
// silently rot.
func BenchmarkTraceScan(b *testing.B) {
	const records = 256 << 10
	gen := workload.OLTP{PageSize: 8192, TargetSize: 256 << 20, ReadFraction: 0.7, Count: records, Seed: 42}
	ops, err := gen.Generate()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := workload.WriteUTR(&buf, ops); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := trace.NewScanner(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for sc.Scan() {
			n++
		}
		if sc.Err() != nil || n != records {
			b.Fatalf("scanned %d records, err %v", n, sc.Err())
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / records
	b.ReportMetric(1e9/perOp, "records/s")
}

// BenchmarkEngineSpeedup measures the wall-clock scaling of the parallel
// engine on a fixed 16-run plan against the simulated Memoright. The state
// is enforced once on a master device and every shard runs on a clone of
// it, so per-shard work is snapshot + run: comparing ns/op across the
// worker-count sub-benchmarks shows the pool's scaling up to the machine's
// core count. The merged results are byte-identical across all
// sub-benchmarks by construction (engine.TestDeterministicMerge and
// engine.TestMasterCloneVsRebuildIdentical assert this).
func BenchmarkEngineSpeedup(b *testing.B) {
	cfg := benchCfg()
	cfg.Capacity = 64 << 20
	d := core.StandardDefaults()
	d.IOCount = 512
	d.RandomTarget = cfg.Capacity / 2
	var exps []core.Experiment
	for _, sz := range []int64{8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		dd := d
		dd.IOSize = sz
		for _, base := range core.Baselines {
			exps = append(exps, core.Experiment{
				Micro: "speedup", Base: base, Param: "IOSize", Value: sz, Pattern: base.Pattern(dd),
			})
		}
	}
	plan := methodology.BuildPlan(exps, cfg.Capacity, time.Second, nil)
	factory := paperexp.ShardFactory("memoright", cfg)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%02d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := engine.ExecutePlan(context.Background(), plan, factory, engine.Options{
					Workers: workers,
					Seed:    cfg.Seed,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Results) != len(exps) {
					b.Fatalf("got %d results, want %d", len(res.Results), len(exps))
				}
			}
			b.ReportMetric(float64(workers), "workers")
		})
	}
}
