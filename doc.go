// Package uflip is a from-scratch Go reproduction of "uFLIP: Understanding
// Flash IO Patterns" (Bouganim, Jónsson, Bonnet, CIDR 2009): the uFLIP
// benchmark (IO patterns, nine micro-benchmarks), its benchmarking
// methodology (device state enforcement, the start-up/running two-phase
// model, pause determination, benchmark plans), and a full flash device
// simulator (NAND chips, flash translation layers, write buffers,
// interconnect) calibrated to the paper's eleven devices.
//
// The module is named uflip and has no external dependencies; build and
// test with "go build ./... && go test ./...", or try
// "go run ./cmd/uflip -device memoright" for a full benchmark run.
// Benchmark plans execute through the parallel engine (internal/engine):
// deterministic shards on private simulated devices across a worker pool,
// selected with the uflip command's -parallel flag (-parallel 1 is the
// sequential fallback; any worker count produces identical results).
//
// The implementation lives under internal/; see README.md for the layout,
// cmd/ for the executables, examples/ for runnable walk-throughs, and
// bench_test.go in this directory for the benchmark harness that regenerates
// every table and figure of the paper's evaluation.
package uflip
