// Package uflip is a from-scratch Go reproduction of "uFLIP: Understanding
// Flash IO Patterns" (Bouganim, Jónsson, Bonnet, CIDR 2009): the uFLIP
// benchmark (IO patterns, nine micro-benchmarks), its benchmarking
// methodology (device state enforcement, the start-up/running two-phase
// model, pause determination, benchmark plans), and a full flash device
// simulator (NAND chips, flash translation layers, write buffers,
// interconnect) calibrated to the paper's eleven devices.
//
// The module is named uflip and has no external dependencies; build and
// test with "go build ./... && go test ./...", or try
// "go run ./cmd/uflip -device memoright" for a full benchmark run.
// Benchmark plans execute through the parallel engine (internal/engine):
// deterministic shards on private simulated devices across a worker pool,
// selected with the uflip command's -parallel flag (-parallel 1 is the
// sequential fallback; any worker count produces identical results).
//
// Performance: the IO pipeline is batch-first. device.Device exposes
// SubmitBatch(at, ios, done) next to the per-IO Submit: callers hand over
// a slice of IOs plus a reused done scratch slice (absolute submission
// times, or ChainNext/ChainAfter to chain each IO on its predecessor's
// completion) and the simulator services the whole batch in one virtual
// call with zero allocations — SimDevice and CompositeDevice implement it
// natively, and the pattern executor, state enforcement, workload
// replayer and array sweeps all submit fixed-size batches from reused
// buffers. The per-IO path survives as the reference implementation:
// device.SerialSubmitBatch and the device.NewPerIO wrapper force batches
// through Submit one IO at a time, and differential oracles (a device
// fuzz target plus full-plan, array and workload CSV byte-identity tests
// in internal/paperexp) pin the two paths identical. On top of that, the
// whole simulation stack snapshots — flash chips, arrays, every
// translation layer and the simulated device itself expose deep Clone()
// — so the engine enforces the paper's well-defined device state
// (Section 4.1) once per (profile, capacity, seed) master and hands every
// shard a clone instead of replaying the enforcement IOs; tests pin the
// clone path byte-identical to rebuilding per shard. The hot path is
// allocation-free in steady state (generic zero-boxing heaps replace
// container/heap, map bookkeeping runs on a fixed ring, both
// SimDevice.Submit and the 128-IO SubmitBatch are pinned at 0 allocs/op),
// and stats.Percentiles derives any number of quantiles from one sort.
// Profile any run with the uflip command's -cpuprofile/-memprofile flags;
// track the benchmark trajectory with "make bench-json" and gate
// regressions with "make bench-check" (cmd/benchcheck against the
// committed BENCH_baseline.json, pinning Table3, EngineSpeedup,
// SubmitBatch and ReplayParallel).
//
// Beyond the paper's micro-benchmarks, the workload subsystem
// (internal/workload, surfaced as "uflip workload") drives the simulated
// devices with application-shaped workloads: synthetic generators — an
// OLTP-style random page read/write mix (-kind oltp), log-structured
// append streams (-kind append), Zipfian hot/cold access (-kind zipf) and
// bursty arrival phases (-kind bursty) — plus a block-trace replayer for a
// simple CSV format (offset,size,mode,gap_us; header optional, '#'
// comments, gaps stored losslessly). Streams are pure functions of their
// configuration and seed; replays split into fixed segments that execute
// on private devices across the worker pool and merge in stream order, so
// results are byte-identical for any -parallel value. Long replays report
// windowed summaries (internal/stats) so drift over time stays visible.
//
// Composite device arrays (internal/device.CompositeDevice) extend the
// paper's single-device study to multi-device deployments: stripe (RAID-0
// with configurable chunk size, chunk-crossing IOs split and coalesce per
// member), mirror (RAID-1, writes fan out to all members, reads go to the
// member with the fewest outstanding IOs) and concat layouts over any mix
// of simulated members, each member behind a bounded host-side queue whose
// depth couples the members (a full queue stalls the array's dispatcher).
// Arrays are fully deterministic and Clone()-able, so the engine shards
// them exactly like single devices. Every -device flag accepts an array
// spec such as "stripe(2,mtron,mtron)" or "stripe(4,mtron,chunk=64k,qd=8)"
// (capacity applies per member), and "uflip array" sweeps the four
// baselines over layout x member count x queue depth into a Table-3-style
// grid (byte-identical for any -parallel value).
//
// Enforced device states persist across processes through the state store
// (internal/statestore, surfaced as the -statedir flag on every uflip
// command): the first run of a (device spec, capacity, seed) combination
// enforces the Section 4.1 state and saves the whole stack's serialized
// form to disk — chip state, FTL maps, heap and LRU layouts, cache
// buffers, pipeline clocks — and every later run loads it back instead of
// replaying the fill, with results pinned byte-identical either way.
// Files are content-addressed by a SHA-256 of the canonical key and carry
// a format version and payload CRC, so corrupted or truncated caches fail
// loudly instead of mis-loading. On top of the store, "uflip serve"
// (internal/server) runs the simulator as a long-lived experiment daemon:
// plan, workload and array-sweep jobs submitted as JSON over HTTP execute
// through the same pipelines as the CLI (byte-identical results, pinned by
// tests and a CI diff), with a bounded job queue, configurable per-job
// parallelism, per-job cancellation, and one state store shared by all
// jobs — each device state is enforced at most once, ever.
//
// Fault injection (internal/device.FaultyDevice, spec syntax
// "faulty(mtron,readerr=1e-4,spike=200us@0.01,seed=7)", accepted by every
// -device flag and nestable into array members) wraps any device with a
// deterministic fault schedule — a pure function of seed and op index:
// per-op read/write media-error probabilities, explicit failing op
// indexes, sticky bad offsets, latency spikes, submission stalls, and a
// whole-device death point. Faults surface as typed errors (ErrMediaRead,
// ErrMediaWrite, ErrDeviceGone) inside a BatchError that keeps the batch
// contract intact, and the stack above rides them out: SubmitBatchRetry
// resubmits failed tails with deterministic simulated-time backoff (fault
// and retry counts land in every summary CSV and report), mirror arrays
// route around members that die mid-run, the daemon's -job-timeout
// watchdog fails stuck jobs with a typed SSE event, the client reconnects
// dropped event streams with jittered backoff, and corrupted state-cache
// files are quarantined and re-enforced instead of mis-loading. Zero-rate
// wrapping is pinned byte-identical to the raw device, and armed
// schedules are pinned byte-identical at any worker count — fault
// injection is an experiment variable, not noise.
//
// A differential and fuzz test layer guards the simulator: 1-member arrays
// are pinned byte-identical to their raw member over the full
// micro-benchmark suite and the workload generators; the FTL data plane
// (ftl.DataPlane over flash.WithDataStorage) carries real payload bytes
// through relocations, merges, garbage collection and cache destages so a
// read-after-write oracle can verify data integrity under OLTP/Zipf
// workloads; and native go fuzz targets (make fuzz-smoke) cover the
// block-trace CSV, result CSV and array-spec parsers with committed seed
// corpora.
//
// The implementation lives under internal/; see README.md for the layout,
// cmd/ for the executables, examples/ for runnable walk-throughs, and
// bench_test.go in this directory for the benchmark harness that regenerates
// every table and figure of the paper's evaluation.
package uflip
