package main

import (
	"errors"
	"flag"
	"fmt"

	"uflip/internal/workload"
)

// runTrace implements the "uflip trace" subcommand: utilities on block
// traces. convert streams a trace between the CSV form and the binary .utr
// form in either direction at O(1) memory, sniffing the input format from
// the file content.
func runTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: uflip trace convert -in <trace> -out <trace> [-to csv|utr]")
	}
	switch args[0] {
	case "convert":
		return runTraceConvert(args[1:])
	default:
		return fmt.Errorf("unknown trace subcommand %q (want convert)", args[0])
	}
}

func runTraceConvert(args []string) error {
	fs := flag.NewFlagSet("uflip trace convert", flag.ContinueOnError)
	var (
		in  = fs.String("in", "", "input trace (CSV or .utr; format detected by content, not extension)")
		out = fs.String("out", "", "output trace path")
		to  = fs.String("to", "", "output format: csv or utr (default: by the -out extension)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("pass -in <trace> and -out <trace>")
	}
	format := *to
	if format == "" {
		format = workload.FormatForPath(*out)
	}
	if format != workload.TraceFormatCSV && format != workload.TraceFormatUTR {
		return fmt.Errorf("unknown trace format %q (want csv or utr)", format)
	}
	n, err := workload.ConvertTraceFile(*in, *out, format)
	if err != nil {
		return err
	}
	fmt.Printf("converted %d records: %s -> %s (%s)\n", n, *in, *out, format)
	return nil
}
