package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	"uflip/internal/server"
)

// runServe implements the "uflip serve" subcommand: the long-running
// experiment daemon. It accepts plan/workload/array jobs over HTTP, runs
// them through the engine at configurable parallelism with per-job
// cancellation, and shares one persistent state store across all jobs so
// each (device, capacity, seed) state is enforced at most once — ever.
func runServe(args []string) error {
	fs := flag.NewFlagSet("uflip serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8077", "listen address")
		stateDir = fs.String("statedir", "", "persistent state-store directory shared by all jobs (empty = enforce live per master)")
		queue    = fs.Int("queue", 64, "maximum queued jobs; submissions beyond it are rejected with 503")
		jobs     = fs.Int("jobs", 2, "jobs executed concurrently")
		keep     = fs.Int("keep", 256, "finished jobs retained in memory (oldest evicted first)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "default engine workers per job (requests may override; results are identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	srv, err := server.New(server.Config{
		StateDir:        *stateDir,
		QueueSize:       *queue,
		Workers:         *jobs,
		DefaultParallel: *parallel,
		KeepJobs:        *keep,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("uflip serve: listening on http://%s (%d job workers, queue %d", ln.Addr(), *jobs, *queue)
	if *stateDir != "" {
		fmt.Printf(", state store %s", *stateDir)
	}
	fmt.Println(")")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Println("uflip serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		srv.Close()
		return nil
	case err := <-done:
		srv.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
