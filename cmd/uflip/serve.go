package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	"uflip/internal/server"
)

// runServe implements the "uflip serve" subcommand: the long-running
// experiment daemon. It accepts plan/workload/array jobs over HTTP, runs
// them through the engine at configurable parallelism with per-job
// cancellation, and shares one persistent state store across all jobs so
// each (device, capacity, seed) state is enforced at most once — ever.
func runServe(args []string) error {
	fs := flag.NewFlagSet("uflip serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8077", "listen address")
		stateDir = fs.String("statedir", "", "persistent state-store directory shared by all jobs (empty = enforce live per master)")
		jobDir   = fs.String("jobdir", "", "durable-job directory: submissions, finished results and uploaded traces persist there and survive restarts (empty = in-memory only)")
		queue    = fs.Int("queue", 64, "maximum queued jobs; submissions beyond it are rejected with 503")
		jobs     = fs.Int("jobs", 2, "jobs executed concurrently")
		keep     = fs.Int("keep", 256, "finished jobs retained (oldest evicted first, from memory and -jobdir)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "default engine workers per job (requests may override; results are identical for any value)")
		rate     = fs.Float64("rate", 0, "per-tenant submission rate limit in jobs/second, keyed by X-API-Key (0 = unlimited)")
		burst    = fs.Int("burst", 0, "per-tenant token-bucket burst (0 = derive from -rate)")
		tenantQ  = fs.Int("tenant-queue", 0, "per-tenant queued-job quota (0 = only the global -queue bound)")
		maxTrace = fs.Int64("max-trace-bytes", 0, "largest accepted trace upload in bytes (0 = 8 MiB)")
		jobTO    = fs.Duration("job-timeout", 0, "kill a job still running after this long and report it failed (0 = no watchdog)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	srv, err := server.New(server.Config{
		StateDir:        *stateDir,
		JobDir:          *jobDir,
		QueueSize:       *queue,
		Workers:         *jobs,
		DefaultParallel: *parallel,
		KeepJobs:        *keep,
		RatePerSec:      *rate,
		Burst:           *burst,
		TenantQueue:     *tenantQ,
		MaxTraceBytes:   *maxTrace,
		JobTimeout:      *jobTO,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("uflip serve: listening on http://%s (%d job workers, queue %d", ln.Addr(), *jobs, *queue)
	if *stateDir != "" {
		fmt.Printf(", state store %s", *stateDir)
	}
	if *jobDir != "" {
		fmt.Printf(", job dir %s", *jobDir)
	}
	fmt.Println(")")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Println("uflip serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		srv.Close()
		return nil
	case err := <-done:
		srv.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
