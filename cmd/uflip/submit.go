package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"uflip/internal/api"
	"uflip/internal/client"
	"uflip/internal/profile"
	"uflip/internal/trace"
)

// runSubmit implements the "uflip submit" subcommand: run an experiment on a
// remote `uflip serve` daemon instead of in-process. It mirrors the local
// commands' flags — `uflip submit workload -device ... -kind oltp` submits
// the job `uflip workload -device ... -kind oltp` runs locally — streams the
// daemon's progress events to stderr while waiting, prints the report to
// stdout and, with -out, writes the same result files the local command
// would. The daemon computes results byte-identical to the local run.
func runSubmit(args []string) error {
	kind := "plan"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		kind = args[0]
		args = args[1:]
	}
	switch kind {
	case "plan", "workload", "array":
	default:
		return fmt.Errorf("unknown submit kind %q (want plan, workload or array)", kind)
	}

	fs := flag.NewFlagSet("uflip submit "+kind, flag.ContinueOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8077", "daemon base URL")
		apiKey    = fs.String("api-key", "", "tenant API key (sent as "+api.KeyHeader+")")
		outDir    = fs.String("out", "", "directory for result files (same layout as the local command)")
		capacity  = fs.Int64("capacity", 1<<30, "simulated capacity in bytes, per member for array specs")
		seed      = fs.Int64("seed", 42, "random seed")
		parallel  = fs.Int("parallel", 0, "engine workers for the job (0 = server default; results are identical for any value)")
		noFollow  = fs.Bool("detach", false, "submit and print the job ID without waiting for completion")

		// plan + array
		iocount = fs.Int("iocount", 1024, "base run length before methodology scaling")
		// plan + workload
		devKey = fs.String("device", "", "device profile or array spec (plan and workload)")
		// plan
		micros = fs.String("micro", "", "comma-separated micro-benchmarks (plan; default: all nine)")
		// workload
		wkind     = fs.String("kind", "oltp", "workload kind: oltp, append, zipf, bursty (or pass -trace)")
		traceFile = fs.String("trace", "", "block trace (CSV or .utr) to upload and replay instead of a synthetic workload")
		ops       = fs.Int("ops", 2048, "synthetic stream length in IOs")
		segment   = fs.Int("segment", 512, "ops per replay segment")
		window    = fs.Int("window", 256, "ios per windowed summary")
		pageSize  = fs.Int64("page", 8*1024, "page size for oltp/zipf/bursty (bytes)")
		ioSize    = fs.Int64("iosize", 32*1024, "append size for the append workload (bytes)")
		target    = fs.Int64("target", 0, "target area in bytes (default: half the capacity)")
		readFrac  = fs.Float64("read-frac", 0.7, "read fraction for oltp/zipf/bursty, in [0,1]")
		streams   = fs.Int("streams", 4, "concurrent append streams for the append workload")
		zipfS     = fs.Float64("zipf-s", 1.2, "Zipf skew for the zipf workload (> 1)")
		think     = fs.Duration("think", 0, "inter-arrival gap between ops")
		burstOps  = fs.Int("burst", 32, "ops per burst for the bursty workload")
		burstGap  = fs.Duration("burst-gap", 100*time.Millisecond, "pause before each burst for the bursty workload")
		// array
		member  = fs.String("member", "", "member device profile (array)")
		layouts = fs.String("layouts", "stripe,mirror,concat", "comma-separated layouts to sweep (array)")
		counts  = fs.String("counts", "1,2,4", "comma-separated member counts (array)")
		qds     = fs.String("qd", "1,4", "comma-separated per-member queue depths (array)")
		chunk   = fs.Int64("chunk", 0, "stripe chunk size in bytes (array; 0 = default 128 KiB)")
		degree  = fs.Int("degree", 4, "concurrent processes per baseline (array)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	cl := &client.Client{BaseURL: *serverURL, APIKey: *apiKey}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	req := api.JobRequest{
		Kind:     kind,
		Device:   *devKey,
		Capacity: *capacity,
		Seed:     *seed,
		Parallel: *parallel,
	}
	var stem string
	switch kind {
	case "plan":
		if *devKey == "" {
			return fmt.Errorf("pass -device <profile>")
		}
		req.IOCount = *iocount
		if *micros != "" {
			req.Micros = strings.Split(*micros, ",")
		}
		stem = fileSafe(*devKey)
	case "workload":
		if *devKey == "" {
			return fmt.Errorf("pass -device <profile>")
		}
		if *target <= 0 {
			*target = *capacity / 2
		}
		wr := &api.WorkloadRequest{SegmentOps: *segment, WindowOps: *window}
		wr.Count = *ops
		wr.PageSize = *pageSize
		wr.IOSize = *ioSize
		wr.TargetSize = *target
		wr.ReadFraction = *readFrac
		wr.ZipfS = *zipfS
		wr.Streams = *streams
		wr.Think = *think
		wr.BurstOps = *burstOps
		wr.BurstGap = *burstGap
		if *traceFile != "" {
			body, err := os.ReadFile(*traceFile)
			if err != nil {
				return err
			}
			info, err := cl.UploadTrace(ctx, body)
			if err != nil {
				return fmt.Errorf("upload trace: %w", err)
			}
			fmt.Fprintf(os.Stderr, "trace %s uploaded: %d ops, hash %s\n", *traceFile, info.Ops, info.Hash)
			wr.TraceHash = info.Hash
		} else {
			wr.Kind = *wkind
		}
		req.Workload = wr
		stem = fileSafe(*devKey)
	case "array":
		if *member == "" {
			return fmt.Errorf("pass -member <profile>")
		}
		req.IOCount = *iocount
		req.Device = ""
		req.Array = &api.ArrayRequest{
			Member:     *member,
			Layouts:    strings.Split(*layouts, ","),
			ChunkBytes: *chunk,
			Degree:     *degree,
		}
		var err error
		if req.Array.Counts, err = parseInts(*counts, "counts", profile.MaxArrayMembers); err != nil {
			return err
		}
		if req.Array.QueueDepths, err = parseInts(*qds, "qd", profile.MaxArrayQueueDepth); err != nil {
			return err
		}
		stem = fileSafe(*member)
	}

	st, err := cl.Submit(ctx, req)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "job %s submitted (%s)\n", st.ID, st.Status)
	if *noFollow {
		fmt.Println(st.ID)
		return nil
	}

	// Follow the daemon's server-sent progress events on stderr; the client
	// reconnects with Last-Event-ID if the connection drops, so a flaky link
	// (or a daemon restart) does not lose progress.
	err = cl.Events(ctx, st.ID, 0, func(ev api.Event) {
		switch ev.Type {
		case api.EventProgress:
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", ev.Done, ev.Total, ev.Detail)
		case api.EventStage:
			fmt.Fprintf(os.Stderr, "%s\n", ev.Detail)
		case api.EventFailed:
			fmt.Fprintf(os.Stderr, "job %s failed: %s\n", ev.Job, ev.Error)
		default:
			if ev.Detail != "" {
				fmt.Fprintf(os.Stderr, "job %s %s: %s\n", ev.Job, ev.Type, ev.Detail)
			} else {
				fmt.Fprintf(os.Stderr, "job %s %s\n", ev.Job, ev.Type)
			}
		}
	})
	if err != nil {
		return err
	}
	final, err := cl.Status(ctx, st.ID)
	if err != nil {
		return err
	}
	switch final.Status {
	case api.StatusDone:
	case api.StatusCanceled:
		return fmt.Errorf("job %s was canceled", final.ID)
	default:
		return fmt.Errorf("job %s %s: %s", final.ID, final.Status, final.Error)
	}

	rep, err := cl.Report(ctx, final.ID)
	if err != nil {
		return err
	}
	os.Stdout.Write(rep)

	if *outDir == "" {
		return nil
	}
	if kind == "array" {
		rows, err := cl.ResultRows(ctx, final.ID)
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, stem+"-arrays.json")
		f, err := trace.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "grid written to %s\n", path)
		return nil
	}
	// The CSV comes back verbatim — the same bytes the daemon persisted and
	// the same bytes the local command would write — and lands under the
	// local command's file name, so downstream tooling cannot tell a remote
	// run from a local one.
	if kind == "workload" {
		stem += "-workload"
	}
	csv, err := cl.CSV(ctx, final.ID)
	if err != nil {
		return err
	}
	records, err := cl.ResultRecords(ctx, final.ID)
	if err != nil {
		return err
	}
	if err := trace.SaveJSON(filepath.Join(*outDir, stem+".jsonl"), records); err != nil {
		return err
	}
	if err := trace.WriteFileAtomic(filepath.Join(*outDir, stem+".csv"), csv); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "results written under %s\n", *outDir)
	return nil
}
