package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"uflip/internal/engine"
	"uflip/internal/paperexp"
	"uflip/internal/profile"
	"uflip/internal/report"
	"uflip/internal/statestore"
	"uflip/internal/trace"
	"uflip/internal/workload"
)

// runWorkload implements the "uflip workload" subcommand: synthetic
// application-shaped workloads and CSV block-trace replays against a
// simulated device, sharded deterministically across workers.
func runWorkload(args []string) error {
	fs := flag.NewFlagSet("uflip workload", flag.ContinueOnError)
	var (
		devKey    = fs.String("device", "", "device profile or array spec to replay against (see flashio -list)")
		capacity  = fs.Int64("capacity", 1<<30, "simulated capacity in bytes, per member for array specs")
		kind      = fs.String("kind", "oltp", "workload kind: oltp, append, zipf, bursty (or pass -trace)")
		traceFile = fs.String("trace", "", "replay a block trace (CSV offset,size,mode,gap_us or binary .utr; detected by content) instead of a synthetic workload")
		ops       = fs.Int("ops", 2048, "synthetic stream length in IOs")
		seed      = fs.Int64("seed", 42, "random seed (stream generation and per-segment device state)")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker count (1 = sequential fallback; results are identical for any value)")
		segment   = fs.Int("segment", 512, "ops per replay segment (fixed segmentation keeps parallel replay deterministic)")
		window    = fs.Int("window", 256, "ios per windowed summary in the report")
		pageSize  = fs.Int64("page", 8*1024, "page size for oltp/zipf/bursty (bytes)")
		ioSize    = fs.Int64("iosize", 32*1024, "append size for the append workload (bytes)")
		target    = fs.Int64("target", 0, "target area in bytes (default: half the capacity)")
		readFrac  = fs.Float64("read-frac", 0.7, "read fraction for oltp/zipf/bursty, in [0,1]")
		streams   = fs.Int("streams", 4, "concurrent append streams for the append workload")
		zipfS     = fs.Float64("zipf-s", 1.2, "Zipf skew for the zipf workload (> 1)")
		think     = fs.Duration("think", 0, "inter-arrival gap between ops (0 = back-to-back)")
		burstOps  = fs.Int("burst", 32, "ops per burst for the bursty workload")
		burstGap  = fs.Duration("burst-gap", 100*time.Millisecond, "pause before each burst for the bursty workload")
		dumpTrace = fs.String("dump-trace", "", "also write the replayed stream as a block trace to this path (a .utr extension selects the binary form)")
		stateDir  = fs.String("statedir", "", "persistent state-cache directory: segment devices load their enforced state instead of re-filling (results are byte-identical)")
		outDir    = fs.String("out", "", "directory for JSON/CSV replay results")
		verbose   = fs.Bool("v", false, "log each completed segment")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit (inspect with go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *devKey == "" {
		return fmt.Errorf("pass -device <profile>")
	}
	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "uflip:", perr)
		}
	}()
	desc, err := profile.DescribeDevice(*devKey)
	if err != nil {
		return err
	}
	if *target <= 0 {
		*target = *capacity / 2
	}

	// Trace replays stream straight from the file when the binary .utr form
	// is passed (O(segment) memory); CSV traces and synthetic generators
	// materialize the stream as before. Both land in a workload.Source so
	// one replay path serves every input and stays byte-identical.
	var src workload.Source
	if *traceFile != "" {
		format, err := workload.SniffTraceFile(*traceFile)
		if err != nil {
			return err
		}
		label := traceLabel(*traceFile)
		if format == workload.TraceFormatUTR {
			u, err := workload.OpenUTRFile(*traceFile)
			if err != nil {
				return err
			}
			defer u.Close()
			u.SetLabel(label)
			src = u
		} else {
			ops, err := workload.LoadTrace(*traceFile)
			if err != nil {
				return err
			}
			src = workload.OpsSource(workload.Trace{Label: label}.Name(), ops)
		}
		if *dumpTrace != "" {
			n, err := workload.ConvertTraceFile(*traceFile, *dumpTrace, workload.FormatForPath(*dumpTrace))
			if err != nil {
				return err
			}
			fmt.Printf("trace written to %s (%d IOs)\n", *dumpTrace, n)
		}
	} else {
		gen, err := buildGenerator(*kind, generatorKnobs{
			pageSize: *pageSize, ioSize: *ioSize, target: *target,
			readFrac: *readFrac, streams: *streams, zipfS: *zipfS,
			think: *think, burstOps: *burstOps, burstGap: *burstGap,
			ops: *ops, seed: *seed,
		})
		if err != nil {
			return err
		}
		stream, err := gen.Generate()
		if err != nil {
			return err
		}
		if *dumpTrace != "" {
			if err := workload.SaveTraceAuto(*dumpTrace, stream); err != nil {
				return err
			}
			fmt.Printf("trace written to %s (%d IOs)\n", *dumpTrace, len(stream))
		}
		src = workload.OpsSource(gen.Name(), stream)
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("== %s (%s)\n", *devKey, desc)
	fmt.Printf("replaying %s: %d IOs in segments of %d on %d workers\n",
		src.Name(), src.Len(), *segment, workers)
	var progress engine.ProgressFunc
	if *verbose {
		progress = func(done, total int, desc string) {
			fmt.Printf("  [%d/%d] %s\n", done, total, desc)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	shardCfg := paperexp.Config{
		Capacity: *capacity,
		Seed:     *seed,
		Pause:    time.Second,
	}
	if *stateDir != "" {
		if shardCfg.Store, err = statestore.Open(*stateDir); err != nil {
			return err
		}
	}
	factory := paperexp.ShardFactory(*devKey, shardCfg)
	res, err := workload.ReplaySource(ctx, src, factory, workload.Options{
		SegmentOps: *segment,
		Workers:    workers,
		Seed:       *seed,
		WindowOps:  *window,
		Progress:   progress,
	})
	if err != nil {
		return err
	}
	fmt.Println()
	if err := report.WorkloadSection(os.Stdout, res); err != nil {
		return err
	}
	if *outDir != "" {
		if err := saveWorkloadResults(*outDir, fileSafe(*devKey), res); err != nil {
			return err
		}
		fmt.Printf("\nresults written under %s\n", *outDir)
	}
	return nil
}

// generatorKnobs carries the flag values a synthetic generator may use.
type generatorKnobs struct {
	pageSize, ioSize, target int64
	readFrac, zipfS          float64
	streams, burstOps, ops   int
	think, burstGap          time.Duration
	seed                     int64
}

// traceLabel names a replayed trace in reports: the file name without its
// format extension, so the same stream replayed from its .csv and .utr
// forms produces byte-identical results.
func traceLabel(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func buildGenerator(kind string, k generatorKnobs) (workload.Generator, error) {
	// Flags map onto the declarative spec the experiment server also
	// accepts, so CLI and server builds of one workload are identical.
	return workload.Spec{
		Kind:         kind,
		Count:        k.ops,
		Seed:         k.seed,
		PageSize:     k.pageSize,
		IOSize:       k.ioSize,
		TargetSize:   k.target,
		ReadFraction: k.readFrac,
		ZipfS:        k.zipfS,
		Streams:      k.streams,
		Think:        k.think,
		BurstOps:     k.burstOps,
		BurstGap:     k.burstGap,
	}.Build()
}

// saveWorkloadResults persists the replay like benchmark runs: one RunRecord
// per segment (with the per-IO series) as JSON lines plus a summary CSV.
func saveWorkloadResults(dir, devKey string, res *workload.Result) error {
	records := paperexp.WorkloadRecords(res)
	if err := trace.SaveJSON(filepath.Join(dir, devKey+"-workload.jsonl"), records); err != nil {
		return err
	}
	f, err := trace.Create(filepath.Join(dir, devKey+"-workload.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteSummaryCSV(f, records)
}
