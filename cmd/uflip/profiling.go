package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"uflip/internal/trace"
)

// startProfiles starts the optional pprof captures behind the -cpuprofile
// and -memprofile flags. The returned stop function finishes both captures:
// it must run before the process exits for the profiles to be readable
// (inspect them with `go tool pprof <binary> <file>`). Empty paths disable
// the respective profile.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile, memFile *os.File
	if cpuPath != "" {
		cpuFile, err = trace.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if memPath != "" {
		// Create up front so a bad path fails before the run, not after.
		memFile, err = trace.Create(memPath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("memprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memFile != nil {
			runtime.GC() // materialize the final live-heap numbers
			werr := pprof.WriteHeapProfile(memFile)
			if cerr := memFile.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("memprofile: %w", werr)
			}
		}
		return nil
	}, nil
}
