package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"uflip/internal/device"
	"uflip/internal/paperexp"
	"uflip/internal/profile"
	"uflip/internal/report"
	"uflip/internal/statestore"
	"uflip/internal/trace"
)

// runArray implements the "uflip array" subcommand: the array scenario sweep
// — the four baselines measured over every layout × member count × queue
// depth combination of composite devices — reported as a Table-3-style grid.
func runArray(args []string) error {
	fs := flag.NewFlagSet("uflip array", flag.ContinueOnError)
	var (
		member   = fs.String("member", "", "member device profile (see flashio -list)")
		layouts  = fs.String("layouts", "stripe,mirror,concat", "comma-separated layouts to sweep")
		counts   = fs.String("counts", "1,2,4", "comma-separated member counts")
		qds      = fs.String("qd", "1,4", "comma-separated per-member queue depths")
		chunk    = fs.Int64("chunk", 0, "stripe chunk size in bytes (0 = default 128 KiB)")
		degree   = fs.Int("degree", 4, "concurrent processes per baseline (queue effects need > 1)")
		capacity = fs.Int64("capacity", 256<<20, "simulated capacity per member in bytes")
		seed     = fs.Int64("seed", 42, "random seed")
		iocount  = fs.Int("iocount", 1024, "IOs per baseline run")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker count (1 = sequential fallback; the grid is identical for any value)")
		stateDir = fs.String("statedir", "", "persistent state-cache directory: each combination's enforced master loads from it instead of re-filling (the grid is byte-identical)")
		outDir   = fs.String("out", "", "directory for the JSON grid")
		verbose  = fs.Bool("v", false, "log each completed run")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *member == "" {
		return fmt.Errorf("pass -member <profile>")
	}
	ac := paperexp.ArrayConfig{
		Member:     *member,
		ChunkBytes: *chunk,
		Degree:     *degree,
		Workers:    *parallel,
	}
	var err error
	if ac.Layouts, err = parseLayouts(*layouts); err != nil {
		return err
	}
	if ac.Counts, err = parseInts(*counts, "counts", profile.MaxArrayMembers); err != nil {
		return err
	}
	if ac.QueueDepths, err = parseInts(*qds, "qd", profile.MaxArrayQueueDepth); err != nil {
		return err
	}
	cfg := paperexp.Config{Capacity: *capacity, Seed: *seed, IOCount: *iocount, Pause: paperexp.DefaultConfig().Pause}
	if *stateDir != "" {
		if cfg.Store, err = statestore.Open(*stateDir); err != nil {
			return err
		}
	}

	combos := len(ac.Layouts) * len(ac.Counts) * len(ac.QueueDepths)
	fmt.Printf("== array sweep over %s: %d layouts x %d counts x %d queue depths = %d combinations, degree %d, %d workers\n",
		*member, len(ac.Layouts), len(ac.Counts), len(ac.QueueDepths), combos, ac.Degree, *parallel)
	var progress func(done, total int, desc string)
	if *verbose {
		progress = func(done, total int, desc string) {
			fmt.Printf("  [%d/%d] %s\n", done, total, desc)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rows, err := paperexp.ArraySweep(ctx, cfg, ac, progress)
	if err != nil {
		return err
	}
	fmt.Println()
	if err := report.ArraySection(os.Stdout, rows); err != nil {
		return err
	}
	if *outDir != "" {
		path := filepath.Join(*outDir, fileSafe(*member)+"-arrays.json")
		f, err := trace.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\ngrid written to %s\n", path)
	}
	return nil
}

func parseLayouts(csv string) ([]device.Layout, error) {
	var out []device.Layout
	for _, s := range strings.Split(csv, ",") {
		l, err := device.ParseLayout(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

func parseInts(csv, what string, max int) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 || n > max {
			return nil, fmt.Errorf("bad -%s entry %q (want an integer in [1, %d])", what, s, max)
		}
		out = append(out, n)
	}
	return out, nil
}
