// Command uflip runs the uFLIP benchmark — the nine micro-benchmarks of
// Table 1 — against a simulated flash device, following the full methodology
// of Section 4: random-state enforcement, start-up/period measurement to set
// IOIgnore and IOCount, pause determination, and a benchmark plan with
// disjoint sequential-write target spaces and state resets.
//
// The workload subcommand replays application-shaped workloads instead of
// the paper's micro-benchmarks: synthetic generators (OLTP page mixes,
// log-append streams, Zipfian hot/cold access, bursty phases) and CSV block
// traces, sharded deterministically across workers.
//
// Examples:
//
//	uflip -device memoright                        # full benchmark
//	uflip -device kingston-dti -micro Locality,Order
//	uflip -device mtron -out results/              # JSON + CSV results
//	uflip workload -device memoright -kind oltp -ops 4096
//	uflip workload -device memoright -trace mytrace.csv -parallel 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"uflip/internal/core"
	"uflip/internal/engine"
	"uflip/internal/methodology"
	"uflip/internal/paperexp"
	"uflip/internal/profile"
	"uflip/internal/report"
	"uflip/internal/trace"
)

func main() {
	var err error
	if len(os.Args) > 1 && os.Args[1] == "workload" {
		err = runWorkload(os.Args[2:])
	} else {
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uflip:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		devKey   = flag.String("device", "", "device profile to benchmark (see flashio -list)")
		capacity = flag.Int64("capacity", 1<<30, "simulated capacity in bytes (scaled-down devices behave identically)")
		micros   = flag.String("micro", "", "comma-separated micro-benchmarks to run (default: all nine)")
		ioCount  = flag.Int("iocount", 1024, "base run length before methodology scaling")
		seed     = flag.Int64("seed", 42, "random seed")
		outDir   = flag.String("out", "", "directory for JSON/CSV results")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for plan execution (1 = sequential fallback; results are identical for any value)")
		verbose  = flag.Bool("v", false, "log each run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit (inspect with go tool pprof)")
	)
	flag.Parse()
	if *devKey == "" {
		return fmt.Errorf("pass -device <profile>")
	}
	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "uflip:", perr)
		}
	}()
	prof, err := profile.ByKey(*devKey)
	if err != nil {
		return err
	}
	dev, err := prof.BuildWithCapacity(*capacity)
	if err != nil {
		return err
	}

	// Methodology, step 1: enforce the random initial state (Section 4.1).
	fmt.Printf("== %s (%s)\n", prof.Key, prof.String())
	fmt.Printf("enforcing random state over %d MB...\n", *capacity>>20)
	at, err := methodology.EnforceRandomState(dev, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("state enforced in %v of device time\n", at.Round(time.Second))

	// Step 2: measure start-up and running phases (Section 4.2).
	d := core.StandardDefaults()
	d.IOCount = *ioCount
	d.Seed = *seed
	d.RandomTarget = dev.Capacity() / 2
	phases, err := methodology.MeasurePhases(dev, d, 4*(*ioCount), at+5*time.Second)
	if err != nil {
		return err
	}
	fmt.Println()
	if err := report.PhaseTable(phases).Render(os.Stdout); err != nil {
		return err
	}

	// Step 3: determine the pause between runs (Section 4.3).
	pauseRep, err := methodology.MeasurePause(dev, d, phases.End+5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("\nlingering effect after random writes: %d IOs (%v); pause between runs: %v\n",
		pauseRep.LingerIOs, pauseRep.LingerTime.Round(time.Millisecond), pauseRep.RecommendedPause)

	// Step 4: build and run the benchmark plan.
	selected, err := selectMicros(*micros, d, dev.Capacity())
	if err != nil {
		return err
	}
	var exps []core.Experiment
	for _, mb := range selected {
		exps = append(exps, mb.Experiments...)
	}
	plan := methodology.BuildPlan(exps, dev.Capacity(), pauseRep.RecommendedPause, phases)
	plan.Device = prof.Key
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("\nplan: %d runs, %d state resets; executing on %d workers\n",
		len(plan.Steps)-plan.Resets, plan.Resets, workers)
	var progress engine.ProgressFunc
	if *verbose {
		progress = func(done, total int, desc string) {
			fmt.Printf("  [%d/%d] %s\n", done, total, desc)
		}
	}
	// Plan runs execute through the engine: each shard gets its own freshly
	// built device with the state enforced from the shard's derived seed, so
	// any worker count produces identical merged results. Ctrl-C cancels
	// between runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	factory := paperexp.ShardFactory(prof.Key, paperexp.Config{
		Capacity: *capacity,
		Seed:     *seed,
		Pause:    pauseRep.RecommendedPause,
	})
	results, err := engine.ExecutePlan(ctx, plan, factory, engine.Options{
		Workers:  workers,
		Seed:     *seed,
		Progress: progress,
	})
	if err != nil {
		return err
	}
	fmt.Printf("benchmark complete: %d runs, %v of device time on the longest shard\n\n", len(results.Results), results.Elapsed.Round(time.Second))

	// Summaries per micro-benchmark.
	for _, mb := range selected {
		t := &report.Table{
			Title:   mb.Name + " (" + mb.Description + ")",
			Headers: []string{"experiment", "mean(ms)", "min(ms)", "max(ms)", "sd(ms)"},
		}
		for _, res := range results.Results {
			if res.Exp.Micro != mb.Name {
				continue
			}
			s := res.Run.Summary
			t.AddRow(res.Exp.ID(), s.Mean*1e3, s.Min*1e3, s.Max*1e3, s.StdDev*1e3)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	// Key characteristics (the device's Table 3 row), when the needed
	// micro-benchmarks ran.
	char := report.Characterize(results, d.IOSize)
	if err := report.CharacterTable([]report.DeviceCharacter{char}).Render(os.Stdout); err != nil {
		return err
	}

	if *outDir != "" {
		if err := saveResults(*outDir, prof.Key, results); err != nil {
			return err
		}
		fmt.Printf("\nresults written under %s\n", *outDir)
	}
	return nil
}

func selectMicros(csvList string, d core.Defaults, capacity int64) ([]core.Microbenchmark, error) {
	all := core.AllMicrobenchmarks(d, capacity)
	if csvList == "" {
		return all, nil
	}
	byName := make(map[string]core.Microbenchmark, len(all))
	var names []string
	for _, mb := range all {
		byName[strings.ToLower(mb.Name)] = mb
		names = append(names, mb.Name)
	}
	var out []core.Microbenchmark
	for _, want := range strings.Split(csvList, ",") {
		mb, ok := byName[strings.ToLower(strings.TrimSpace(want))]
		if !ok {
			return nil, fmt.Errorf("unknown micro-benchmark %q (known: %s)", want, strings.Join(names, ", "))
		}
		out = append(out, mb)
	}
	return out, nil
}

func saveResults(dir, devKey string, results *methodology.Results) error {
	records := make([]trace.RunRecord, 0, len(results.Results))
	for _, res := range results.Results {
		rec := trace.RunRecord{
			ID:           res.Exp.ID(),
			Device:       results.Device,
			Micro:        res.Exp.Micro,
			Base:         res.Exp.Base.String(),
			Param:        res.Exp.Param,
			Value:        res.Exp.Value,
			IOIgnore:     res.Run.IOIgnore,
			Summary:      res.Run.Summary,
			TotalSeconds: res.Run.Total.Seconds(),
		}
		rec.SetResponseTimes(res.Run.RTs)
		records = append(records, rec)
	}
	if err := trace.SaveJSON(filepath.Join(dir, devKey+".jsonl"), records); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, devKey+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteSummaryCSV(f, records)
}
