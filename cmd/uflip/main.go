// Command uflip runs the uFLIP benchmark — the nine micro-benchmarks of
// Table 1 — against a simulated flash device, following the full methodology
// of Section 4: random-state enforcement, start-up/period measurement to set
// IOIgnore and IOCount, pause determination, and a benchmark plan with
// disjoint sequential-write target spaces and state resets.
//
// The workload subcommand replays application-shaped workloads instead of
// the paper's micro-benchmarks: synthetic generators (OLTP page mixes,
// log-append streams, Zipfian hot/cold access, bursty phases) and CSV block
// traces, sharded deterministically across workers.
//
// The array subcommand sweeps composite devices — stripe/mirror/concat
// arrays of simulated members with per-member queue-depth scheduling — over
// layout, member count and queue depth, reporting a Table-3-style grid.
// Wherever a -device flag takes a profile key it also takes an array spec
// such as "stripe(2,mtron,mtron)" (capacity then applies per member).
//
// Examples:
//
//	uflip -device memoright                        # full benchmark
//	uflip -device kingston-dti -micro Locality,Order
//	uflip -device "stripe(2,mtron,mtron)" -micro Granularity
//	uflip -device mtron -out results/              # JSON + CSV results
//	uflip workload -device memoright -kind oltp -ops 4096
//	uflip workload -device memoright -trace mytrace.csv -parallel 8
//	uflip array -member mtron -counts 1,2,4 -layouts stripe,mirror
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"uflip/internal/core"
	"uflip/internal/engine"
	"uflip/internal/methodology"
	"uflip/internal/paperexp"
	"uflip/internal/profile"
	"uflip/internal/report"
	"uflip/internal/trace"
)

func main() {
	var err error
	switch {
	case len(os.Args) > 1 && os.Args[1] == "workload":
		err = runWorkload(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "array":
		err = runArray(os.Args[2:])
	default:
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uflip:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		devKey   = flag.String("device", "", "device profile or array spec to benchmark, e.g. mtron or stripe(2,mtron,mtron) (see flashio -list)")
		capacity = flag.Int64("capacity", 1<<30, "simulated capacity in bytes, per member for array specs (scaled-down devices behave identically)")
		micros   = flag.String("micro", "", "comma-separated micro-benchmarks to run (default: all nine)")
		ioCount  = flag.Int("iocount", 1024, "base run length before methodology scaling")
		seed     = flag.Int64("seed", 42, "random seed")
		outDir   = flag.String("out", "", "directory for JSON/CSV results")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for plan execution (1 = sequential fallback; results are identical for any value)")
		verbose  = flag.Bool("v", false, "log each run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit (inspect with go tool pprof)")
	)
	flag.Parse()
	if *devKey == "" {
		return fmt.Errorf("pass -device <profile>")
	}
	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "uflip:", perr)
		}
	}()
	desc, err := profile.DescribeDevice(*devKey)
	if err != nil {
		return err
	}
	dev, err := profile.BuildDevice(*devKey, *capacity)
	if err != nil {
		return err
	}

	// Methodology, step 1: enforce the random initial state (Section 4.1).
	fmt.Printf("== %s (%s)\n", *devKey, desc)
	fmt.Printf("enforcing random state over %d MB...\n", dev.Capacity()>>20)
	at, err := methodology.EnforceRandomState(dev, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("state enforced in %v of device time\n", at.Round(time.Second))

	// Step 2: measure start-up and running phases (Section 4.2).
	d := core.StandardDefaults()
	d.IOCount = *ioCount
	d.Seed = *seed
	d.RandomTarget = dev.Capacity() / 2
	phases, err := methodology.MeasurePhases(dev, d, 4*(*ioCount), at+5*time.Second)
	if err != nil {
		return err
	}
	fmt.Println()
	if err := report.PhaseTable(phases).Render(os.Stdout); err != nil {
		return err
	}

	// Step 3: determine the pause between runs (Section 4.3).
	pauseRep, err := methodology.MeasurePause(dev, d, phases.End+5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("\nlingering effect after random writes: %d IOs (%v); pause between runs: %v\n",
		pauseRep.LingerIOs, pauseRep.LingerTime.Round(time.Millisecond), pauseRep.RecommendedPause)

	// Step 4: build and run the benchmark plan.
	selected, err := selectMicros(*micros, d, dev.Capacity())
	if err != nil {
		return err
	}
	var exps []core.Experiment
	for _, mb := range selected {
		exps = append(exps, mb.Experiments...)
	}
	plan := methodology.BuildPlan(exps, dev.Capacity(), pauseRep.RecommendedPause, phases)
	plan.Device = *devKey
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("\nplan: %d runs, %d state resets; executing on %d workers\n",
		len(plan.Steps)-plan.Resets, plan.Resets, workers)
	var progress engine.ProgressFunc
	if *verbose {
		progress = func(done, total int, desc string) {
			fmt.Printf("  [%d/%d] %s\n", done, total, desc)
		}
	}
	// Plan runs execute through the engine: each shard gets its own freshly
	// built device with the state enforced from the shard's derived seed, so
	// any worker count produces identical merged results. Ctrl-C cancels
	// between runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	factory := paperexp.ShardFactory(*devKey, paperexp.Config{
		Capacity: *capacity,
		Seed:     *seed,
		Pause:    pauseRep.RecommendedPause,
	})
	results, err := engine.ExecutePlan(ctx, plan, factory, engine.Options{
		Workers:  workers,
		Seed:     *seed,
		Progress: progress,
	})
	if err != nil {
		return err
	}
	fmt.Printf("benchmark complete: %d runs, %v of device time on the longest shard\n\n", len(results.Results), results.Elapsed.Round(time.Second))

	// Summaries per micro-benchmark.
	for _, mb := range selected {
		t := &report.Table{
			Title:   mb.Name + " (" + mb.Description + ")",
			Headers: []string{"experiment", "mean(ms)", "min(ms)", "max(ms)", "sd(ms)"},
		}
		for _, res := range results.Results {
			if res.Exp.Micro != mb.Name {
				continue
			}
			s := res.Run.Summary
			t.AddRow(res.Exp.ID(), s.Mean*1e3, s.Min*1e3, s.Max*1e3, s.StdDev*1e3)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	// Key characteristics (the device's Table 3 row), when the needed
	// micro-benchmarks ran.
	char := report.Characterize(results, d.IOSize)
	if err := report.CharacterTable([]report.DeviceCharacter{char}).Render(os.Stdout); err != nil {
		return err
	}

	if *outDir != "" {
		if err := saveResults(*outDir, fileSafe(*devKey), results); err != nil {
			return err
		}
		fmt.Printf("\nresults written under %s\n", *outDir)
	}
	return nil
}

// fileSafe turns a device key or array spec into a file-name stem: array
// specs contain parentheses and commas, which stay legible but awkward in
// result paths.
func fileSafe(key string) string {
	out := []rune(key)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
		default:
			out[i] = '_'
		}
	}
	return strings.Trim(string(out), "_")
}

func selectMicros(csvList string, d core.Defaults, capacity int64) ([]core.Microbenchmark, error) {
	all := core.AllMicrobenchmarks(d, capacity)
	if csvList == "" {
		return all, nil
	}
	byName := make(map[string]core.Microbenchmark, len(all))
	var names []string
	for _, mb := range all {
		byName[strings.ToLower(mb.Name)] = mb
		names = append(names, mb.Name)
	}
	var out []core.Microbenchmark
	for _, want := range strings.Split(csvList, ",") {
		mb, ok := byName[strings.ToLower(strings.TrimSpace(want))]
		if !ok {
			return nil, fmt.Errorf("unknown micro-benchmark %q (known: %s)", want, strings.Join(names, ", "))
		}
		out = append(out, mb)
	}
	return out, nil
}

func saveResults(dir, devKey string, results *methodology.Results) error {
	records := make([]trace.RunRecord, 0, len(results.Results))
	for _, res := range results.Results {
		rec := trace.RunRecord{
			ID:           res.Exp.ID(),
			Device:       results.Device,
			Micro:        res.Exp.Micro,
			Base:         res.Exp.Base.String(),
			Param:        res.Exp.Param,
			Value:        res.Exp.Value,
			IOIgnore:     res.Run.IOIgnore,
			Summary:      res.Run.Summary,
			TotalSeconds: res.Run.Total.Seconds(),
		}
		rec.SetResponseTimes(res.Run.RTs)
		records = append(records, rec)
	}
	if err := trace.SaveJSON(filepath.Join(dir, devKey+".jsonl"), records); err != nil {
		return err
	}
	f, err := trace.Create(filepath.Join(dir, devKey+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteSummaryCSV(f, records)
}
