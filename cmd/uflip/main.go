// Command uflip runs the uFLIP benchmark — the nine micro-benchmarks of
// Table 1 — against a simulated flash device, following the full methodology
// of Section 4: random-state enforcement, start-up/period measurement to set
// IOIgnore and IOCount, pause determination, and a benchmark plan with
// disjoint sequential-write target spaces and state resets.
//
// The workload subcommand replays application-shaped workloads instead of
// the paper's micro-benchmarks: synthetic generators (OLTP page mixes,
// log-append streams, Zipfian hot/cold access, bursty phases) and block
// traces — CSV or the streaming binary .utr form, detected by content and
// replayed with identical results — sharded deterministically across
// workers. The trace subcommand converts between the two trace forms.
//
// The array subcommand sweeps composite devices — stripe/mirror/concat
// arrays of simulated members with per-member queue-depth scheduling — over
// layout, member count and queue depth, reporting a Table-3-style grid.
// Wherever a -device flag takes a profile key it also takes an array spec
// such as "stripe(2,mtron,mtron)" (capacity then applies per member).
//
// Examples:
//
//	uflip -device memoright                        # full benchmark
//	uflip -device kingston-dti -micro Locality,Order
//	uflip -device "stripe(2,mtron,mtron)" -micro Granularity
//	uflip -device mtron -out results/              # JSON + CSV results
//	uflip workload -device memoright -kind oltp -ops 4096
//	uflip workload -device memoright -trace mytrace.csv -parallel 8
//	uflip trace convert -in mytrace.csv -out mytrace.utr
//	uflip workload -device memoright -trace mytrace.utr -parallel 8
//	uflip array -member mtron -counts 1,2,4 -layouts stripe,mirror
//
// The serve subcommand runs the experiment daemon (versioned /v1 HTTP API
// with streaming progress, durable jobs and per-tenant quotas), and the
// submit subcommand runs any of the above on a remote daemon with identical
// results:
//
//	uflip serve -statedir /var/lib/uflip/state -jobdir /var/lib/uflip/jobs
//	uflip submit -device memoright -out results/
//	uflip submit workload -device memoright -trace mytrace.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"uflip/internal/core"
	"uflip/internal/engine"
	"uflip/internal/methodology"
	"uflip/internal/paperexp"
	"uflip/internal/profile"
	"uflip/internal/report"
	"uflip/internal/statestore"
	"uflip/internal/trace"
)

func main() {
	var err error
	switch {
	case len(os.Args) > 1 && os.Args[1] == "workload":
		err = runWorkload(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "array":
		err = runArray(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "serve":
		err = runServe(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "submit":
		err = runSubmit(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "trace":
		err = runTrace(os.Args[2:])
	default:
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uflip:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		devKey   = flag.String("device", "", "device profile or array spec to benchmark, e.g. mtron or stripe(2,mtron,mtron) (see flashio -list)")
		capacity = flag.Int64("capacity", 1<<30, "simulated capacity in bytes, per member for array specs (scaled-down devices behave identically)")
		micros   = flag.String("micro", "", "comma-separated micro-benchmarks to run (default: all nine)")
		ioCount  = flag.Int("iocount", 1024, "base run length before methodology scaling")
		seed     = flag.Int64("seed", 42, "random seed")
		outDir   = flag.String("out", "", "directory for JSON/CSV results")
		stateDir = flag.String("statedir", "", "persistent state-cache directory: enforced device states are saved there and later runs load them instead of re-filling (results are byte-identical)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for plan execution (1 = sequential fallback; results are identical for any value)")
		verbose  = flag.Bool("v", false, "log each run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit (inspect with go tool pprof)")
	)
	flag.Parse()
	if *devKey == "" {
		return fmt.Errorf("pass -device <profile>")
	}
	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "uflip:", perr)
		}
	}()
	desc, err := profile.DescribeDevice(*devKey)
	if err != nil {
		return err
	}
	cfg := paperexp.Config{Capacity: *capacity, Seed: *seed, IOCount: *ioCount}
	if *stateDir != "" {
		if cfg.Store, err = statestore.Open(*stateDir); err != nil {
			return err
		}
	}
	fmt.Printf("== %s (%s)\n", *devKey, desc)
	// With a state cache, enforcement narration moves to stderr so stdout
	// stays byte-identical between the cold run (which fills and saves) and
	// every warm run (which loads and skips the fill).
	stateOut := io.Writer(os.Stdout)
	if cfg.Store != nil {
		stateOut = os.Stderr
	}
	var renderErr error
	stages := paperexp.Stages{
		EnforcingState: func(capacity int64) {
			if cfg.Store != nil {
				fmt.Fprintf(stateOut, "preparing enforced random state over %d MB (cache: %s)...\n", capacity>>20, *stateDir)
				return
			}
			fmt.Fprintf(stateOut, "enforcing random state over %d MB...\n", capacity>>20)
		},
		StateEnforced: func(at time.Duration, hit bool) {
			if hit {
				fmt.Fprintf(stateOut, "state cache hit: loaded enforced state (%v of device time), fill skipped\n", at.Round(time.Second))
				return
			}
			suffix := ""
			if cfg.Store != nil {
				suffix = " (saved to state cache)"
			}
			fmt.Fprintf(stateOut, "state enforced in %v of device time%s\n", at.Round(time.Second), suffix)
		},
		PhasesMeasured: func(phases *methodology.PhaseReport) {
			fmt.Println()
			if err := report.PhaseTable(phases).Render(os.Stdout); err != nil && renderErr == nil {
				renderErr = err
			}
		},
		PauseMeasured: func(pauseRep *methodology.PauseReport) {
			fmt.Printf("\nlingering effect after random writes: %d IOs (%v); pause between runs: %v\n",
				pauseRep.LingerIOs, pauseRep.LingerTime.Round(time.Millisecond), pauseRep.RecommendedPause)
		},
		PlanBuilt: func(plan methodology.Plan, workers int) {
			fmt.Printf("\nplan: %d runs, %d state resets; executing on %d workers\n",
				len(plan.Steps)-plan.Resets, plan.Resets, workers)
		},
	}
	var progress engine.ProgressFunc
	if *verbose {
		progress = func(done, total int, desc string) {
			fmt.Printf("  [%d/%d] %s\n", done, total, desc)
		}
	}
	var selectedMicros []string
	if *micros != "" {
		selectedMicros = strings.Split(*micros, ",")
	}
	// Plan runs execute through the engine: each shard gets a clone of the
	// one enforced master state, so any worker count produces identical
	// merged results. Ctrl-C cancels between runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	out, err := paperexp.RunBenchmark(ctx, *devKey, cfg, paperexp.BenchmarkRequest{
		Micros:   selectedMicros,
		Workers:  *parallel,
		Progress: progress,
		Stages:   stages,
	})
	if err != nil {
		return err
	}
	if renderErr != nil {
		return renderErr
	}
	results := out.Results
	fmt.Printf("benchmark complete: %d runs, %v of device time on the longest shard\n\n", len(results.Results), results.Elapsed.Round(time.Second))

	// Summaries per micro-benchmark, then the device's Table 3 row.
	if err := report.PlanSection(os.Stdout, out.Micros, results, core.StandardDefaults().IOSize); err != nil {
		return err
	}

	if *outDir != "" {
		if err := saveResults(*outDir, fileSafe(*devKey), results); err != nil {
			return err
		}
		fmt.Printf("\nresults written under %s\n", *outDir)
	}
	return nil
}

// fileSafe turns a device key or array spec into a file-name stem: array
// specs contain parentheses and commas, which stay legible but awkward in
// result paths.
func fileSafe(key string) string {
	out := []rune(key)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
		default:
			out[i] = '_'
		}
	}
	return strings.Trim(string(out), "_")
}

func saveResults(dir, devKey string, results *methodology.Results) error {
	records := paperexp.Records(results)
	if err := trace.SaveJSON(filepath.Join(dir, devKey+".jsonl"), records); err != nil {
		return err
	}
	f, err := trace.Create(filepath.Join(dir, devKey+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteSummaryCSV(f, records)
}
