// Command benchcheck compares two benchmark result files produced by
// `make bench-json` (go test -json streams) and fails when a pinned
// benchmark regressed by more than the allowed fraction. It is the guard CI
// runs against the committed BENCH_baseline.json so the performance the
// snapshot/clone engine and the batch-first submit path bought cannot
// silently rot: the default pins cover the plan path (Table3, EngineSpeedup),
// the batch pipeline (SubmitBatch, ReplayParallel) and the binary trace
// scanner (TraceScan, the .utr ingest/replay hot path).
//
// Usage:
//
//	benchcheck -baseline BENCH_baseline.json BENCH_20260730.json
//	benchcheck -baseline old.json -pin BenchmarkEngineSpeedup,BenchmarkTable3 -max-regress 0.2 new.json
//
// Benchmarks are matched by full name (e.g. BenchmarkTable3/memoright); the
// -pin list holds name prefixes, so one entry covers a family of
// sub-benchmarks. Unpinned benchmarks present in only one file are reported
// but never fail the check (the suite may legitimately grow or shrink); a
// pinned benchmark missing from the current results fails it, since a
// vanished benchmark would otherwise disable the gate silently.
//
// -ratio pins relative costs WITHIN the current file: each NUM/DEN<=LIMIT
// entry fails the check when ns/op(NUM) exceeds LIMIT times ns/op(DEN). The
// default pins the zero-fault FaultyDevice wrapper within 5% of the raw
// batch submit path — wrapping must stay free when no faults are armed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's output events benchcheck reads.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseBenchFile extracts benchmark-name -> ns/op from a go test -json
// stream. go test emits the result line ("	       1	  123456 ns/op	...")
// as an output event carrying the benchmark's name in the Test field; when
// the name is only in the output text (older streams), it is taken from
// there instead.
func parseBenchFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if ev.Action != "output" || !strings.Contains(ev.Output, "ns/op") {
			continue
		}
		name, ns, ok := parseBenchLine(ev.Output)
		if !ok {
			continue
		}
		if name == "" {
			name = ev.Test
		}
		if name == "" {
			continue
		}
		out[name] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

// parseBenchLine pulls (name, ns/op) out of one benchmark output line. The
// name field is empty when the line only carries the measurement.
func parseBenchLine(s string) (name string, nsPerOp float64, ok bool) {
	fields := strings.Fields(s)
	for i, f := range fields {
		if f == "ns/op" && i > 0 {
			ns, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return "", 0, false
			}
			if strings.HasPrefix(fields[0], "Benchmark") {
				name = fields[0]
			}
			return name, ns, true
		}
	}
	return "", 0, false
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline go test -json benchmark file")
		pins         = flag.String("pin", "BenchmarkEngineSpeedup,BenchmarkTable3,BenchmarkSubmitBatch,BenchmarkReplayParallel,BenchmarkTraceScan", "comma-separated benchmark-name prefixes that must not regress")
		maxRegress   = flag.Float64("max-regress", 0.20, "maximum allowed fractional ns/op regression of a pinned benchmark")
		ratios       = flag.String("ratio", "BenchmarkSubmitBatchFaultyNoop/BenchmarkSubmitBatch<=1.05", "comma-separated NUM/DEN<=LIMIT pins on ns/op ratios within the current file (empty disables)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck -baseline <old.json> <new.json>")
		os.Exit(2)
	}
	if err := run(*baselinePath, flag.Arg(0), strings.Split(*pins, ","), *maxRegress, *ratios); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

// ratioPin is one NUM/DEN<=LIMIT entry: the current-file ns/op of Num must
// not exceed Limit times the current-file ns/op of Den.
type ratioPin struct {
	Num, Den string
	Limit    float64
}

// parseRatios parses the -ratio flag value. Entries are comma-separated
// NUM/DEN<=LIMIT specs; an empty value disables ratio checking.
func parseRatios(s string) ([]ratioPin, error) {
	var out []ratioPin
	for _, spec := range strings.Split(s, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		names, limit, ok := strings.Cut(spec, "<=")
		if !ok {
			return nil, fmt.Errorf("ratio %q: want NUM/DEN<=LIMIT", spec)
		}
		num, den, ok := strings.Cut(names, "/")
		if !ok || num == "" || den == "" {
			return nil, fmt.Errorf("ratio %q: want NUM/DEN<=LIMIT", spec)
		}
		max, err := strconv.ParseFloat(strings.TrimSpace(limit), 64)
		if err != nil || max <= 0 {
			return nil, fmt.Errorf("ratio %q: bad limit %q", spec, limit)
		}
		out = append(out, ratioPin{Num: strings.TrimSpace(num), Den: strings.TrimSpace(den), Limit: max})
	}
	return out, nil
}

// lookupBench finds a benchmark by bare name in a result map, tolerating the
// -N GOMAXPROCS suffix go test appends (BenchmarkFoo-8). An exact match wins;
// otherwise the suffixed entry is used.
func lookupBench(m map[string]float64, name string) (float64, bool) {
	if v, ok := m[name]; ok {
		return v, true
	}
	for k, v := range m {
		if strings.HasPrefix(k, name+"-") && !strings.ContainsAny(k[len(name)+1:], "/-") {
			if _, err := strconv.Atoi(k[len(name)+1:]); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func run(baselinePath, currentPath string, pins []string, maxRegress float64, ratioSpec string) error {
	ratioPins, err := parseRatios(ratioSpec)
	if err != nil {
		return err
	}
	base, err := parseBenchFile(baselinePath)
	if err != nil {
		return err
	}
	cur, err := parseBenchFile(currentPath)
	if err != nil {
		return err
	}
	pinned := func(name string) bool {
		for _, p := range pins {
			if p = strings.TrimSpace(p); p != "" && strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	fmt.Printf("%-45s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, name := range names {
		now := cur[name]
		was, inBase := base[name]
		if !inBase {
			fmt.Printf("%-45s %14s %14.0f %8s\n", name, "-", now, "new")
			continue
		}
		delta := (now - was) / was
		mark := ""
		if pinned(name) && delta > maxRegress {
			mark = "  REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", name, was, now, delta*100))
		}
		fmt.Printf("%-45s %14.0f %14.0f %+7.1f%%%s\n", name, was, now, delta*100, mark)
	}
	baseNames := make([]string, 0, len(base))
	for name := range base {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if _, ok := cur[name]; !ok {
			fmt.Printf("%-45s %14.0f %14s %8s\n", name, base[name], "-", "gone")
			if pinned(name) {
				// A vanished pinned benchmark would silently disable the
				// gate; treat it as a failure until the baseline is
				// refreshed alongside the rename/removal.
				regressions = append(regressions, fmt.Sprintf("%s: pinned benchmark missing from current results", name))
			}
		}
	}
	for _, rp := range ratioPins {
		num, okN := lookupBench(cur, rp.Num)
		den, okD := lookupBench(cur, rp.Den)
		if !okN || !okD {
			// A ratio whose operands vanished would silently disable the
			// gate, same as a missing pinned benchmark.
			regressions = append(regressions, fmt.Sprintf("ratio %s/%s: benchmark missing from current results", rp.Num, rp.Den))
			continue
		}
		ratio := num / den
		mark := ""
		if ratio > rp.Limit {
			mark = "  REGRESSION"
			regressions = append(regressions, fmt.Sprintf("ratio %s/%s: %.3f exceeds limit %.3f", rp.Num, rp.Den, ratio, rp.Limit))
		}
		fmt.Printf("ratio %s/%s: %.3f (limit %.3f)%s\n", rp.Num, rp.Den, ratio, rp.Limit, mark)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d pinned check(s) failed (max regression %.0f%%):\n  %s",
			len(regressions), maxRegress*100, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("ok: no pinned benchmark regressed more than %.0f%%\n", maxRegress*100)
	return nil
}
