// Command uflip-report regenerates the tables and figures of the uFLIP
// paper's evaluation (Section 5) from live simulator runs, rendering them as
// text tables and ASCII plots.
//
// Examples:
//
//	uflip-report -exp table2           # the device list
//	uflip-report -exp table3           # the result summary (slow: 7 devices)
//	uflip-report -exp fig3             # Mtron random-write trace
//	uflip-report -exp fig8             # locality curves
//	uflip-report -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uflip/internal/core"
	"uflip/internal/device"
	"uflip/internal/paperexp"
	"uflip/internal/profile"
	"uflip/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uflip-report:", err)
		os.Exit(1)
	}
}

var experiments = []string{
	"table1", "table2", "table3",
	"fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"alignment", "mix", "parallelism", "state",
}

func run() error {
	var (
		exp      = flag.String("exp", "", "experiment to regenerate: "+strings.Join(experiments, ", ")+" or all")
		capacity = flag.Int64("capacity", 512<<20, "simulated device capacity")
		seed     = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()
	if *exp == "" {
		return fmt.Errorf("pass -exp <name>; known: %s, all", strings.Join(experiments, ", "))
	}
	cfg := paperexp.DefaultConfig()
	cfg.Capacity = *capacity
	cfg.Seed = *seed

	selected := []string{*exp}
	if *exp == "all" {
		selected = experiments
	}
	for _, name := range selected {
		if err := render(name, cfg); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	return nil
}

func render(name string, cfg paperexp.Config) error {
	switch name {
	case "table1":
		return table1()
	case "table2":
		return table2()
	case "table3":
		return table3(cfg)
	case "fig3":
		return traceFigure("Figure 3: start-up and running phase, Mtron RW", "mtron", cfg, paperexp.Figure3)
	case "fig4":
		return traceFigure("Figure 4: running phase, Kingston DTI SW", "kingston-dti", cfg, paperexp.Figure4)
	case "fig5":
		return fig5(cfg)
	case "fig6":
		return granFigure("Figure 6: granularity, Memoright", "memoright", cfg)
	case "fig7":
		return granFigure("Figure 7: granularity, Kingston DTI (SR, RR, SW)", "kingston-dti", cfg)
	case "fig8":
		return fig8(cfg)
	case "alignment":
		return sweepFigure("Alignment (Samsung): response time vs IOShift", "samsung", cfg,
			func(d core.Defaults, capacity int64) core.Microbenchmark { return core.Alignment(d, capacity) })
	case "mix":
		return sweepFigure("Mix (Memoright): response time vs Ratio", "memoright", cfg,
			func(d core.Defaults, capacity int64) core.Microbenchmark { return core.Mix(d, capacity) })
	case "parallelism":
		return sweepFigure("Parallelism (Memoright): response time vs degree", "memoright", cfg,
			func(d core.Defaults, capacity int64) core.Microbenchmark { return core.Parallelism(d, capacity) })
	case "state":
		return stateAnomaly(cfg)
	default:
		return fmt.Errorf("unknown experiment (known: %s)", strings.Join(experiments, ", "))
	}
}

// table1 prints the micro-benchmark definitions.
func table1() error {
	t := &report.Table{
		Title:   "Table 1: the nine uFLIP micro-benchmarks",
		Headers: []string{"Micro-benchmark", "Varying parameter", "Experiments", "Description"},
	}
	d := core.StandardDefaults()
	for _, mb := range core.AllMicrobenchmarks(d, 32<<30) {
		t.AddRow(mb.Name, mb.Param, len(mb.Experiments), mb.Description)
	}
	return t.Render(os.Stdout)
}

// table2 prints the device list.
func table2() error {
	t := &report.Table{
		Title:   "Table 2: selected flash devices",
		Headers: []string{"", "Brand", "Model", "Type", "Size", "Price", "FTL", "Cell", "Chips"},
	}
	for _, p := range profile.All() {
		arrow := ""
		if p.Representative {
			arrow = "->"
		}
		t.AddRow(arrow, p.Brand, p.Model, p.Type,
			fmt.Sprintf("%d GB", p.CapacityBytes>>30), fmt.Sprintf("$%d", p.PriceUSD),
			p.Kind.String(), p.Cell.String(), p.Chips)
	}
	return t.Render(os.Stdout)
}

func table3(cfg paperexp.Config) error {
	var chars []report.DeviceCharacter
	for _, p := range profile.Representatives() {
		fmt.Fprintf(os.Stderr, "measuring %s...\n", p.Key)
		dev, at, err := paperexp.Prepare(p.Key, cfg)
		if err != nil {
			return err
		}
		c, _, err := paperexp.Table3Row(dev, at, cfg)
		if err != nil {
			return err
		}
		chars = append(chars, c)
	}
	return report.CharacterTable(chars).Render(os.Stdout)
}

func traceFigure(title, key string, cfg paperexp.Config, f func(dev device.Device, at time.Duration, cfg paperexp.Config) (*paperexp.TraceResult, error)) error {
	dev, at, err := paperexp.Prepare(key, cfg)
	if err != nil {
		return err
	}
	tr, err := f(dev, at, cfg)
	if err != nil {
		return err
	}
	p := &report.Plot{Title: title, XLabel: "IO number", YLabel: "response time (ms)", LogY: true, Height: 16}
	p.AddDurationSeries("rt", '.', tr.Run.RTs[:min(len(tr.Run.RTs), 1024)])
	xs, ys := report.RunningAverageSeries(tr.Run.RTs[:min(len(tr.Run.RTs), 1024)])
	p.AddSeries("running avg", '+', xs, ys)
	if err := p.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("two-phase analysis: start-up=%d IOs, period=%d, cheap=%.2f ms, expensive=%.2f ms\n",
		tr.Analysis.StartUp, tr.Analysis.Period, tr.Analysis.CheapLevel*1e3, tr.Analysis.ExpensiveLevel*1e3)
	return nil
}

func fig5(cfg paperexp.Config) error {
	dev, at, err := paperexp.Prepare("mtron", cfg)
	if err != nil {
		return err
	}
	rep, err := paperexp.Figure5(dev, at, cfg)
	if err != nil {
		return err
	}
	p := &report.Plot{Title: "Figure 5: pause determination, Mtron (SR, RW batch, SR)", XLabel: "IO number", YLabel: "response time (ms)", LogY: true, Height: 16}
	p.AddDurationSeries("rt", '.', rep.Trace)
	if err := p.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("lingering effect: %d reads (%v); recommended pause %v\n",
		rep.LingerIOs, rep.LingerTime.Round(time.Millisecond), rep.RecommendedPause)
	return nil
}

func granFigure(title, key string, cfg paperexp.Config) error {
	dev, at, err := paperexp.Prepare(key, cfg)
	if err != nil {
		return err
	}
	curves, _, err := paperexp.GranularityCurves(dev, at, cfg)
	if err != nil {
		return err
	}
	p := &report.Plot{Title: title, XLabel: "IO size (KB)", YLabel: "response time (ms)", LogY: true, Height: 16}
	markers := map[core.Baseline]byte{core.SR: 's', core.RR: 'r', core.SW: 'S', core.RW: 'R'}
	for _, b := range core.Baselines {
		pts := curves[b]
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, pt := range pts {
			xs[i], ys[i] = pt.X, pt.Y
		}
		p.AddSeries(b.String(), markers[b], xs, ys)
	}
	return p.Render(os.Stdout)
}

func fig8(cfg paperexp.Config) error {
	p := &report.Plot{Title: "Figure 8: locality — RW cost relative to SW vs TargetSize (MB)", XLabel: "log2(target MB)", YLabel: "RW/SW", Height: 16}
	markers := map[string]byte{"samsung": 's', "memoright": 'm', "mtron": 't'}
	for _, key := range []string{"samsung", "memoright", "mtron"} {
		dev, at, err := paperexp.Prepare(key, cfg)
		if err != nil {
			return err
		}
		pts, _, err := paperexp.LocalityCurve(dev, at, cfg)
		if err != nil {
			return err
		}
		var xs, ys []float64
		for _, pt := range pts {
			if pt.X < 1 {
				continue
			}
			xs = append(xs, log2(pt.X))
			ys = append(ys, pt.Y)
		}
		p.AddSeries(key, markers[key], xs, ys)
	}
	return p.Render(os.Stdout)
}

func sweepFigure(title, key string, cfg paperexp.Config, gen func(core.Defaults, int64) core.Microbenchmark) error {
	dev, at, err := paperexp.Prepare(key, cfg)
	if err != nil {
		return err
	}
	d := core.StandardDefaults()
	d.IOCount = cfg.IOCount
	d.RandomTarget = dev.Capacity() / 2
	series, _, err := paperexp.SweepSeries(dev, at, cfg, gen(d, dev.Capacity()))
	if err != nil {
		return err
	}
	t := &report.Table{Title: title, Headers: []string{"series", "param", "mean(ms)"}}
	for label, pts := range series {
		for _, pt := range pts {
			t.AddRow(label, pt.X, pt.Y)
		}
	}
	return t.Render(os.Stdout)
}

func stateAnomaly(cfg paperexp.Config) error {
	fresh, used, err := paperexp.StateAnomaly("samsung", cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Section 4.1 state anomaly (Samsung): RW out of the box %.2f ms, after writing the whole device %.2f ms (%.1fx)\n",
		fresh, used, used/fresh)
	return nil
}

func log2(x float64) float64 {
	n := 0.0
	for x >= 2 {
		x /= 2
		n++
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
