// Command flashio is the low-level pattern runner, the analogue of the
// FlashIO tool the uFLIP authors used: it executes one fully parameterized
// IO pattern against a device (simulated or a real file) and reports per-IO
// response times and summary statistics.
//
// Examples:
//
//	flashio -device memoright -pattern RW -iosize 32768 -iocount 1024
//	flashio -device kingston-dti -pattern SW -lba partitioned -partitions 8
//	flashio -device mtron -pattern RW -pause 10ms -series rw.csv
//	flashio -file /tmp/scratch.img -capacity 1073741824 -pattern RR
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uflip/internal/core"
	"uflip/internal/device"
	"uflip/internal/methodology"
	"uflip/internal/profile"
	"uflip/internal/stats"
	"uflip/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flashio:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		devKey    = flag.String("device", "", "simulated device profile (see -list)")
		list      = flag.Bool("list", false, "list device profiles and exit")
		file      = flag.String("file", "", "measure a real file instead of a simulated device")
		capacity  = flag.Int64("capacity", 1<<30, "device capacity in bytes (simulated or created file)")
		state     = flag.String("state", "random", "initial device state: random, sequential or none (Section 4.1)")
		pattern   = flag.String("pattern", "SR", "baseline pattern: SR, RR, SW or RW")
		lba       = flag.String("lba", "", "override location function: seq, rnd, ordered or partitioned")
		ioSize    = flag.Int64("iosize", 32*1024, "IO size in bytes")
		ioShift   = flag.Int64("shift", 0, "alignment shift in bytes (IOShift)")
		ioCount   = flag.Int("iocount", 1024, "number of IOs")
		ioIgnore  = flag.Int("ioignore", 0, "warm-up IOs excluded from the summary")
		offset    = flag.Int64("offset", 0, "target offset in bytes")
		target    = flag.Int64("target", 0, "target size in bytes (0 = methodology default)")
		pause     = flag.Duration("pause", 0, "pause between IOs")
		burst     = flag.Int("burst", 0, "burst length (IOs between pauses; 0/1 = every IO)")
		incr      = flag.Int64("incr", 1, "LBA increment for -lba ordered (-1 reverse, 0 in-place)")
		parts     = flag.Int("partitions", 1, "partition count for -lba partitioned")
		parallel  = flag.Int("parallel", 1, "replicate the pattern over N processes")
		seed      = flag.Int64("seed", 1, "random seed")
		seriesOut = flag.String("series", "", "write the per-IO response-time series to this CSV file")
	)
	flag.Parse()

	if *list {
		for _, p := range profile.All() {
			fmt.Printf("%-18s %s ($%d)\n", p.Key, p.String(), p.PriceUSD)
		}
		return nil
	}

	dev, err := openDevice(*devKey, *file, *capacity)
	if err != nil {
		return err
	}

	var at time.Duration
	switch *state {
	case "random":
		fmt.Fprintf(os.Stderr, "enforcing random state over %d bytes...\n", dev.Capacity())
		at, err = methodology.EnforceRandomState(dev, *seed)
	case "sequential":
		at, err = methodology.EnforceSequentialState(dev, *seed)
	case "none":
	default:
		return fmt.Errorf("unknown -state %q", *state)
	}
	if err != nil {
		return err
	}
	at += time.Second

	b, err := core.ParseBaseline(*pattern)
	if err != nil {
		return err
	}
	d := core.StandardDefaults()
	d.IOSize = *ioSize
	d.IOCount = *ioCount
	d.IOIgnore = *ioIgnore
	d.Seed = *seed
	d.RandomTarget = dev.Capacity() / 2
	p := b.Pattern(d)
	p.TargetOffset = *offset
	p.IOShift = *ioShift
	p.Pause = *pause
	p.Burst = *burst
	if *target > 0 {
		p.TargetSize = *target
	}
	switch *lba {
	case "":
	case "seq":
		p.LBA = core.Sequential
	case "rnd":
		p.LBA = core.Random
	case "ordered":
		p.LBA = core.Ordered
		p.Incr = *incr
	case "partitioned":
		p.LBA = core.Partitioned
		p.Partitions = *parts
	default:
		return fmt.Errorf("unknown -lba %q", *lba)
	}

	var run *core.Run
	if *parallel > 1 {
		run, err = core.ExecuteParallel(dev, p, *parallel, at)
	} else {
		run, err = core.ExecutePattern(dev, p, at)
	}
	if err != nil {
		return err
	}

	fmt.Printf("device=%s pattern=%s ios=%d total=%v\n", dev.Name(), run.Name, len(run.RTs), run.Total)
	fmt.Printf("summary (excluding %d warm-up IOs): %s\n", run.IOIgnore, run.Summary)
	an := stats.AnalyzePhases(run.RTs)
	fmt.Printf("two-phase analysis: start-up=%d IOs, period=%d IOs, oscillates=%v\n",
		an.StartUp, an.Period, an.Oscillates)

	if *seriesOut != "" {
		f, err := os.Create(*seriesOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteRTSeriesCSV(f, run.RTs); err != nil {
			return err
		}
		fmt.Printf("per-IO series written to %s\n", *seriesOut)
	}
	return nil
}

func openDevice(devKey, file string, capacity int64) (device.Device, error) {
	switch {
	case devKey != "" && file != "":
		return nil, fmt.Errorf("use -device or -file, not both")
	case file != "":
		return device.OpenFileDevice(file, capacity)
	case devKey != "":
		p, err := profile.ByKey(devKey)
		if err != nil {
			return nil, err
		}
		return p.BuildWithCapacity(capacity)
	default:
		return nil, fmt.Errorf("pass -device <profile> (see -list) or -file <path>")
	}
}
