// Command uflint runs uflip's repo-invariant static-analysis suite: the
// detwall, cloneguard and batchcontract analyzers over the module source,
// or — with -escapes — the allocfree escape gate over the compiler's
// -gcflags=-m output.
//
// Usage:
//
//	uflint [packages]              run the static analyzers (default ./...)
//	uflint -escapes [packages]     run the hot-path escape gate
//	uflint -allow FILE -escapes    use FILE as the escape allowlist
//
// uflint exits 1 when any finding survives the //uflint: annotations, and
// prints findings one per line as file:line:col: analyzer(class): message.
// See the README's "Static analysis & invariants" section for the
// annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"

	"uflip/internal/lint"
)

func main() {
	escapes := flag.Bool("escapes", false, "run the allocfree escape gate instead of the static analyzers")
	allow := flag.String("allow", lint.DefaultAllowFile, "escape allowlist file (with -escapes)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: uflint [-escapes] [-allow file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *escapes {
		os.Exit(runEscapes(patterns, *allow))
	}
	os.Exit(runStatic(patterns))
}

func runStatic(patterns []string) int {
	pkgs, err := lint.Load(lint.Config{Tests: true}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uflint:", err)
		return 2
	}
	diags, err := lint.Check(pkgs, lint.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uflint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "uflint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func runEscapes(patterns []string, allowFile string) int {
	res, err := lint.RunEscapes("", patterns, allowFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uflint -escapes:", err)
		return 2
	}
	for _, s := range res.Stale {
		fmt.Fprintf(os.Stderr, "uflint -escapes: stale allowlist entry (no longer produced): %s\n", s)
	}
	for _, s := range res.New {
		fmt.Println(s)
	}
	if len(res.New) > 0 {
		fmt.Fprintf(os.Stderr, "uflint -escapes: %d new heap escape(s) on //uflint:hotpath functions; fix them or extend %s\n",
			len(res.New), allowFile)
		return 1
	}
	fmt.Fprintf(os.Stderr, "uflint -escapes: %d hotpath function(s) clean against allowlist\n", res.HotFuncs)
	return 0
}
